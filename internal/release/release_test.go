package release

import (
	"sort"
	"testing"

	"dsi/internal/schema"
)

func TestGenerateIterationCounts(t *testing.T) {
	p := DefaultIteration("rm1")
	jobs := GenerateIteration(p, 1)
	counts := map[JobType]int{}
	for _, j := range jobs {
		counts[j.Type]++
	}
	if counts[Exploratory] != p.ExploratoryJobs || counts[Combo] != p.ComboJobs || counts[ReleaseCandidate] != p.ReleaseCandidates {
		t.Fatalf("counts = %v", counts)
	}
}

func TestComboDurationsSkewed(t *testing.T) {
	// Figure 4: combo durations are heavily skewed — the longest runs
	// several times the median, with some beyond 10 days.
	jobs := GenerateIteration(DefaultIteration("rm1"), 2)
	var durs []float64
	for _, j := range jobs {
		if j.Type == Combo {
			durs = append(durs, j.DurationDays)
		}
	}
	sort.Float64s(durs)
	median := durs[len(durs)/2]
	longest := durs[len(durs)-1]
	if longest < 3*median {
		t.Fatalf("longest %.1f not >3x median %.1f", longest, median)
	}
	if longest < 10 {
		t.Fatalf("longest combo %.1f days; paper sees >10", longest)
	}
}

func TestComboJobsOftenKilled(t *testing.T) {
	// §4.1: many combo jobs fail or are killed for lackluster accuracy.
	jobs := GenerateIteration(DefaultIteration("rm1"), 3)
	var killed, total int
	for _, j := range jobs {
		if j.Type != Combo {
			continue
		}
		total++
		if j.Status != Completed {
			killed++
		}
	}
	if killed*3 < total { // at least a third not completed
		t.Fatalf("only %d/%d combo jobs not completed", killed, total)
	}
}

func TestExploratoryJobsUseLittleData(t *testing.T) {
	jobs := GenerateIteration(DefaultIteration("rm1"), 4)
	for _, j := range jobs {
		if j.Type == Exploratory && j.DataFraction >= 0.05 {
			t.Fatalf("exploratory job reads %.2f of the table, want <5%%", j.DataFraction)
		}
		if j.Type == Combo && j.DataFraction < 0.5 {
			t.Fatalf("combo job reads %.2f, want the majority", j.DataFraction)
		}
	}
}

func TestTemporalSkew(t *testing.T) {
	// Engineers launch combo jobs asynchronously across the window.
	jobs := GenerateIteration(DefaultIteration("rm1"), 5)
	var submits []float64
	for _, j := range jobs {
		if j.Type == Combo {
			submits = append(submits, j.SubmitDay)
		}
	}
	sort.Float64s(submits)
	if submits[len(submits)-1]-submits[0] < 3 {
		t.Fatal("combo submissions not spread across the window")
	}
}

func TestDailyComputeIntegration(t *testing.T) {
	jobs := []Job{
		{SubmitDay: 0.5, DurationDays: 1, Compute: 2}, // days 0 and 1, half each
	}
	daily := DailyCompute(jobs, 3)
	if daily[0] != 1 || daily[1] != 1 || daily[2] != 0 {
		t.Fatalf("daily = %v", daily)
	}
}

func TestDailyComputeConservesWork(t *testing.T) {
	jobs := GenerateIteration(DefaultIteration("rm1"), 6)
	horizon := 80
	daily := DailyCompute(jobs, horizon)
	var got, want float64
	for _, v := range daily {
		got += v
	}
	for _, j := range jobs {
		want += j.Compute * j.DurationDays
	}
	if diff := got - want; diff < -0.01*want || diff > 0.01*want {
		t.Fatalf("integrated %.2f vs expected %.2f", got, want)
	}
}

func TestSimulateYearHasPeaks(t *testing.T) {
	// Figure 5: distinct peaks when combo windows of many models align.
	models := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	daily := SimulateYear(YearParams{Models: models, IterationGapDays: 45, Days: 365}, 7)
	if len(daily) != 365 {
		t.Fatalf("len = %d", len(daily))
	}
	var sum, peak float64
	for _, v := range daily {
		sum += v
		if v > peak {
			peak = v
		}
	}
	mean := sum / float64(len(daily))
	if peak < 1.5*mean {
		t.Fatalf("peak %.1f not distinct vs mean %.1f", peak, mean)
	}
}

func TestSimulateChurnTable2Shape(t *testing.T) {
	// Table 2: count features created in a 6-month window and their
	// status 6 months later. Beta dominates, active and deprecated are
	// each ~10-15%, experimental is smallest.
	reg := SimulateChurn(DefaultChurn(), 8)
	counts := reg.CountByState(0, 179)
	total := counts[schema.Beta] + counts[schema.Experimental] + counts[schema.Active] + counts[schema.Deprecated]
	if total < 12000 || total > 17000 {
		t.Fatalf("total created in window = %d, want ≈14614", total)
	}
	frac := func(s schema.LifecycleState) float64 { return float64(counts[s]) / float64(total) }
	if frac(schema.Beta) < 0.55 || frac(schema.Beta) > 0.8 {
		t.Fatalf("beta share = %.2f, want ≈0.69", frac(schema.Beta))
	}
	if frac(schema.Experimental) > 0.15 {
		t.Fatalf("experimental share = %.2f, want ≈0.06", frac(schema.Experimental))
	}
	if frac(schema.Active) < 0.05 || frac(schema.Active) > 0.25 {
		t.Fatalf("active share = %.2f, want ≈0.11", frac(schema.Active))
	}
	if frac(schema.Deprecated) < 0.05 || frac(schema.Deprecated) > 0.25 {
		t.Fatalf("deprecated share = %.2f, want ≈0.13", frac(schema.Deprecated))
	}
}

func TestSimulateChurnDeterministic(t *testing.T) {
	a := SimulateChurn(DefaultChurn(), 9)
	b := SimulateChurn(DefaultChurn(), 9)
	ca, cb := a.CountByState(0, 179), b.CountByState(0, 179)
	for s, v := range ca {
		if cb[s] != v {
			t.Fatalf("state %v differs: %d vs %d", s, v, cb[s])
		}
	}
}

func TestJobTypeAndStatusStrings(t *testing.T) {
	if Exploratory.String() != "exploratory" || Combo.String() != "combo" || ReleaseCandidate.String() != "release-candidate" {
		t.Fatal("JobType strings")
	}
	if Completed.String() != "completed" || Killed.String() != "killed" || Failed.String() != "failed" {
		t.Fatal("JobStatus strings")
	}
}
