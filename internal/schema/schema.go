// Package schema defines the data model of the warehouse: samples with
// dense, sparse, and score-list feature maps (§3.1.2 of the paper), table
// schemas, and the feature registry that tracks each feature's lifecycle
// state (Table 2).
package schema

import (
	"fmt"
	"sort"
)

// FeatureID identifies a feature within a table. Production tables hold
// tens of thousands of feature IDs.
type FeatureID int32

// FeatureKind distinguishes the three column families the warehouse
// stores.
type FeatureKind int

const (
	// Dense features map a feature ID to one continuous value (e.g. the
	// current time).
	Dense FeatureKind = iota
	// Sparse features map a feature ID to a variable-length list of
	// categorical values (e.g. page IDs).
	Sparse
	// ScoreList features additionally associate each categorical value
	// with a float weight (e.g. page creation time).
	ScoreList
)

// String implements fmt.Stringer.
func (k FeatureKind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	case ScoreList:
		return "scorelist"
	default:
		return fmt.Sprintf("FeatureKind(%d)", int(k))
	}
}

// ScoredValue is one categorical value with its weight, the element type
// of a score-list feature.
type ScoredValue struct {
	Value int64
	Score float32
}

// Sample is one structured training row: feature maps plus a label.
// Features occupy >99% of stored bytes in production (§3.1.2).
type Sample struct {
	// DenseFeatures maps feature ID -> continuous value.
	DenseFeatures map[FeatureID]float32
	// SparseFeatures maps feature ID -> categorical ID list.
	SparseFeatures map[FeatureID][]int64
	// ScoreListFeatures maps feature ID -> weighted categorical values.
	ScoreListFeatures map[FeatureID][]ScoredValue
	// Label is the supervised target (e.g. click / no-click).
	Label float32
}

// NewSample returns an empty sample with allocated maps.
func NewSample() *Sample {
	return &Sample{
		DenseFeatures:     make(map[FeatureID]float32),
		SparseFeatures:    make(map[FeatureID][]int64),
		ScoreListFeatures: make(map[FeatureID][]ScoredValue),
	}
}

// FeatureCount reports the number of features present in this sample
// across all kinds.
func (s *Sample) FeatureCount() int {
	return len(s.DenseFeatures) + len(s.SparseFeatures) + len(s.ScoreListFeatures)
}

// UncompressedBytes estimates the in-memory byte footprint of the sample:
// 4 bytes per dense value, 8 per sparse ID, 12 per scored value, plus 4
// bytes of feature-ID key overhead per entry and 4 for the label.
func (s *Sample) UncompressedBytes() int64 {
	var b int64 = 4 // label
	b += int64(len(s.DenseFeatures)) * (4 + 4)
	for _, vals := range s.SparseFeatures {
		b += 4 + int64(len(vals))*8
	}
	for _, vals := range s.ScoreListFeatures {
		b += 4 + int64(len(vals))*12
	}
	return b
}

// Column describes one feature column in a table schema.
type Column struct {
	ID   FeatureID
	Kind FeatureKind
	Name string
}

// TableSchema is the ordered set of feature columns a table stores.
type TableSchema struct {
	Name    string
	Columns []Column
}

// NewTableSchema returns a schema with the given name and no columns.
func NewTableSchema(name string) *TableSchema {
	return &TableSchema{Name: name}
}

// AddColumn appends a column. It returns an error if the feature ID is
// already present.
func (t *TableSchema) AddColumn(c Column) error {
	for _, existing := range t.Columns {
		if existing.ID == c.ID {
			return fmt.Errorf("schema: duplicate feature id %d in table %s", c.ID, t.Name)
		}
	}
	t.Columns = append(t.Columns, c)
	return nil
}

// Column returns the column for id, if present.
func (t *TableSchema) Column(id FeatureID) (Column, bool) {
	for _, c := range t.Columns {
		if c.ID == id {
			return c, true
		}
	}
	return Column{}, false
}

// IDsOfKind returns the feature IDs of the given kind in schema order.
func (t *TableSchema) IDsOfKind(kind FeatureKind) []FeatureID {
	var ids []FeatureID
	for _, c := range t.Columns {
		if c.Kind == kind {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// Projection is the set of features a training job reads (its column
// filter, §5.1). The zero value selects nothing.
type Projection struct {
	ids map[FeatureID]bool
}

// NewProjection returns a projection selecting the given feature IDs.
func NewProjection(ids ...FeatureID) *Projection {
	p := &Projection{ids: make(map[FeatureID]bool, len(ids))}
	for _, id := range ids {
		p.ids[id] = true
	}
	return p
}

// Add includes id in the projection.
func (p *Projection) Add(id FeatureID) { p.ids[id] = true }

// Contains reports whether id is selected.
func (p *Projection) Contains(id FeatureID) bool { return p.ids[id] }

// Len reports the number of selected features.
func (p *Projection) Len() int { return len(p.ids) }

// IDs returns the selected feature IDs in ascending order.
func (p *Projection) IDs() []FeatureID {
	ids := make([]FeatureID, 0, len(p.ids))
	for id := range p.ids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LifecycleState tracks a feature through the release process (§4.3).
type LifecycleState int

const (
	// Beta features are proposed but not actively logged; they may be
	// back-filled or injected per exploratory job.
	Beta LifecycleState = iota
	// Experimental features are logged and used by combo or RC jobs.
	Experimental
	// Active features belong to the current production model version.
	Active
	// Deprecated features are still written but pending review/reaping.
	Deprecated
	// Reaped features have been removed to protect user privacy.
	Reaped
)

// String implements fmt.Stringer.
func (s LifecycleState) String() string {
	switch s {
	case Beta:
		return "beta"
	case Experimental:
		return "experimental"
	case Active:
		return "active"
	case Deprecated:
		return "deprecated"
	case Reaped:
		return "reaped"
	default:
		return fmt.Sprintf("LifecycleState(%d)", int(s))
	}
}

// Logged reports whether features in this state are actively written to
// the dataset. Per §4.3, experimental, active, and deprecated features are
// logged; beta and reaped features are not.
func (s LifecycleState) Logged() bool {
	return s == Experimental || s == Active || s == Deprecated
}

// FeatureInfo is the registry's record for one feature.
type FeatureInfo struct {
	Column
	State LifecycleState
	// CreatedDay is the simulation day the feature was proposed.
	CreatedDay int
}

// Registry tracks every feature proposed for a table and its lifecycle
// state, supporting the Table 2 churn analysis.
type Registry struct {
	features map[FeatureID]*FeatureInfo
	nextID   FeatureID
}

// NewRegistry returns an empty feature registry.
func NewRegistry() *Registry {
	return &Registry{features: make(map[FeatureID]*FeatureInfo), nextID: 1}
}

// Propose registers a new beta feature and returns its assigned ID.
func (r *Registry) Propose(kind FeatureKind, name string, day int) FeatureID {
	id := r.nextID
	r.nextID++
	r.features[id] = &FeatureInfo{
		Column:     Column{ID: id, Kind: kind, Name: name},
		State:      Beta,
		CreatedDay: day,
	}
	return id
}

// Transition moves a feature to a new lifecycle state. Transitions must
// move forward in the lifecycle (beta → experimental → active →
// deprecated → reaped); any skipping forward is allowed, moving backwards
// is not.
func (r *Registry) Transition(id FeatureID, to LifecycleState) error {
	f, ok := r.features[id]
	if !ok {
		return fmt.Errorf("schema: unknown feature %d", id)
	}
	if to < f.State {
		return fmt.Errorf("schema: feature %d cannot move backwards from %v to %v", id, f.State, to)
	}
	f.State = to
	return nil
}

// Get returns the registry record for id.
func (r *Registry) Get(id FeatureID) (FeatureInfo, bool) {
	f, ok := r.features[id]
	if !ok {
		return FeatureInfo{}, false
	}
	return *f, true
}

// Len reports the number of registered features.
func (r *Registry) Len() int { return len(r.features) }

// CountByState tallies features created within [fromDay, toDay] by their
// current state, reproducing Table 2's view ("features created within a 6
// month window and their status 6 months later").
func (r *Registry) CountByState(fromDay, toDay int) map[LifecycleState]int {
	out := make(map[LifecycleState]int)
	for _, f := range r.features {
		if f.CreatedDay >= fromDay && f.CreatedDay <= toDay {
			out[f.State]++
		}
	}
	return out
}

// LoggedIDs returns the IDs of all features currently written to the
// dataset, in ascending order.
func (r *Registry) LoggedIDs() []FeatureID {
	var ids []FeatureID
	for id, f := range r.features {
		if f.State.Logged() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SchemaOfLogged builds a TableSchema containing all currently logged
// features.
func (r *Registry) SchemaOfLogged(name string) *TableSchema {
	ts := NewTableSchema(name)
	for _, id := range r.LoggedIDs() {
		f := r.features[id]
		// AddColumn cannot fail: registry IDs are unique.
		_ = ts.AddColumn(f.Column)
	}
	return ts
}
