package schema

import (
	"testing"
	"testing/quick"
)

func TestFeatureKindString(t *testing.T) {
	cases := map[FeatureKind]string{
		Dense: "dense", Sparse: "sparse", ScoreList: "scorelist",
		FeatureKind(99): "FeatureKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestSampleFeatureCountAndBytes(t *testing.T) {
	s := NewSample()
	s.DenseFeatures[1] = 0.5
	s.SparseFeatures[2] = []int64{10, 20, 30}
	s.ScoreListFeatures[3] = []ScoredValue{{Value: 1, Score: 0.1}}
	if got := s.FeatureCount(); got != 3 {
		t.Fatalf("FeatureCount = %d, want 3", got)
	}
	// 4 label + (4+4) dense + (4+24) sparse + (4+12) scorelist = 56
	if got := s.UncompressedBytes(); got != 56 {
		t.Fatalf("UncompressedBytes = %d, want 56", got)
	}
}

func TestTableSchemaAddAndLookup(t *testing.T) {
	ts := NewTableSchema("rm1")
	if err := ts.AddColumn(Column{ID: 1, Kind: Dense, Name: "f1"}); err != nil {
		t.Fatal(err)
	}
	if err := ts.AddColumn(Column{ID: 2, Kind: Sparse, Name: "f2"}); err != nil {
		t.Fatal(err)
	}
	if err := ts.AddColumn(Column{ID: 1, Kind: Sparse, Name: "dup"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	c, ok := ts.Column(2)
	if !ok || c.Name != "f2" {
		t.Fatalf("Column(2) = %+v, %v", c, ok)
	}
	if _, ok := ts.Column(9); ok {
		t.Fatal("Column(9) should be absent")
	}
}

func TestIDsOfKind(t *testing.T) {
	ts := NewTableSchema("t")
	for i, k := range []FeatureKind{Dense, Sparse, Dense, ScoreList} {
		if err := ts.AddColumn(Column{ID: FeatureID(i + 1), Kind: k}); err != nil {
			t.Fatal(err)
		}
	}
	dense := ts.IDsOfKind(Dense)
	if len(dense) != 2 || dense[0] != 1 || dense[1] != 3 {
		t.Fatalf("IDsOfKind(Dense) = %v", dense)
	}
}

func TestProjection(t *testing.T) {
	p := NewProjection(3, 1, 2)
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if !p.Contains(2) || p.Contains(4) {
		t.Fatal("Contains misbehaves")
	}
	p.Add(4)
	ids := p.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("len(IDs) = %d, want 4", len(ids))
	}
}

func TestLifecycleLogged(t *testing.T) {
	// §4.3: experimental, active, and deprecated features are actively
	// written; beta and reaped are not.
	logged := map[LifecycleState]bool{
		Beta: false, Experimental: true, Active: true, Deprecated: true, Reaped: false,
	}
	for s, want := range logged {
		if got := s.Logged(); got != want {
			t.Errorf("%v.Logged() = %v, want %v", s, got, want)
		}
	}
}

func TestRegistryProposeAndTransition(t *testing.T) {
	r := NewRegistry()
	id := r.Propose(Sparse, "liked_pages", 10)
	f, ok := r.Get(id)
	if !ok || f.State != Beta || f.Kind != Sparse || f.CreatedDay != 10 {
		t.Fatalf("Get = %+v, %v", f, ok)
	}
	if err := r.Transition(id, Active); err != nil {
		t.Fatal(err)
	}
	if err := r.Transition(id, Experimental); err == nil {
		t.Fatal("backwards transition accepted")
	}
	if err := r.Transition(999, Active); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestRegistryCountByState(t *testing.T) {
	r := NewRegistry()
	a := r.Propose(Dense, "a", 1)
	b := r.Propose(Dense, "b", 5)
	r.Propose(Dense, "c", 100) // outside window
	if err := r.Transition(a, Active); err != nil {
		t.Fatal(err)
	}
	if err := r.Transition(b, Deprecated); err != nil {
		t.Fatal(err)
	}
	counts := r.CountByState(0, 30)
	if counts[Active] != 1 || counts[Deprecated] != 1 || counts[Beta] != 0 {
		t.Fatalf("CountByState = %v", counts)
	}
}

func TestRegistryLoggedIDsAndSchema(t *testing.T) {
	r := NewRegistry()
	beta := r.Propose(Dense, "beta", 0)
	exp := r.Propose(Sparse, "exp", 0)
	act := r.Propose(Dense, "act", 0)
	if err := r.Transition(exp, Experimental); err != nil {
		t.Fatal(err)
	}
	if err := r.Transition(act, Active); err != nil {
		t.Fatal(err)
	}
	ids := r.LoggedIDs()
	if len(ids) != 2 {
		t.Fatalf("LoggedIDs = %v, want 2 entries", ids)
	}
	for _, id := range ids {
		if id == beta {
			t.Fatal("beta feature should not be logged")
		}
	}
	ts := r.SchemaOfLogged("t")
	if len(ts.Columns) != 2 {
		t.Fatalf("SchemaOfLogged has %d columns, want 2", len(ts.Columns))
	}
}

// Property: UncompressedBytes grows monotonically as features are added.
func TestSampleBytesMonotoneProperty(t *testing.T) {
	f := func(sparseLens []uint8) bool {
		s := NewSample()
		prev := s.UncompressedBytes()
		for i, l := range sparseLens {
			vals := make([]int64, int(l)%32)
			s.SparseFeatures[FeatureID(i+1)] = vals
			cur := s.UncompressedBytes()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: registry IDs are unique and dense.
func TestRegistryUniqueIDsProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRegistry()
		seen := make(map[FeatureID]bool)
		for i := 0; i < int(n); i++ {
			id := r.Propose(Dense, "f", i)
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return r.Len() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
