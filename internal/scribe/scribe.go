// Package scribe implements a distributed messaging layer in the style of
// Meta's Scribe (§3.1.1 of the paper): services write raw feature and
// event logs to a local daemon, which groups them into record-oriented
// logical streams ("categories") and persists each stream in LogDevice.
//
// Consumers (the ETL jobs in internal/etl) tail categories by LSN.
package scribe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dsi/internal/logdevice"
	"dsi/internal/metrics"
	"dsi/internal/tectonic/faults"
)

// Message is one log entry produced by a service.
type Message struct {
	// Category routes the message to a logical stream (e.g.
	// "rm1/features", "rm1/events").
	Category string
	// Payload is the serialized log line.
	Payload []byte
	// Token, when non-empty, makes the publish idempotent: a retry of a
	// message whose previous attempt landed but lost its ack (torn
	// write) deduplicates in LogDevice instead of double-appending.
	// Daemons stamp one per logged message.
	Token string
}

// ErrDeferred marks a flush that published nothing for some category
// because its circuit breaker is open: the messages are requeued intact
// and LogDevice was not touched. Transient by definition — a later
// flush retries once the breaker's backoff window passes.
var ErrDeferred = errors.New("scribe: flush deferred by open circuit breaker")

// Retryable reports whether a flush error is transient: deferred by an
// open breaker, or retryable per the storage error taxonomy. Producers
// that favour availability keep logging through these; the daemon
// retries the buffered messages on later flushes.
func Retryable(err error) bool {
	return errors.Is(err, ErrDeferred) || faults.IsRetryable(err)
}

// Bus routes messages from many daemons into per-category LogDevice
// streams.
type Bus struct {
	store *logdevice.Store

	mu         sync.Mutex
	categories map[string]bool

	// MessagesIn counts messages accepted across all daemons.
	MessagesIn metrics.Counter
	// BytesIn counts payload bytes accepted.
	BytesIn metrics.Counter
}

// NewBus returns a bus persisting into store.
func NewBus(store *logdevice.Store) *Bus {
	return &Bus{store: store, categories: make(map[string]bool)}
}

// ensureCategory creates the backing stream on first use.
func (b *Bus) ensureCategory(category string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.categories[category] {
		return nil
	}
	if err := b.store.CreateStream(streamName(category)); err != nil {
		return err
	}
	b.categories[category] = true
	return nil
}

func streamName(category string) string { return "scribe/" + category }

// Publish writes one message to its category's stream. A message
// carrying a write token publishes idempotently: retries after a torn
// ack resolve to the landed record instead of appending twice, and the
// message is counted once.
func (b *Bus) Publish(m Message) (logdevice.LSN, error) {
	if m.Category == "" {
		return 0, fmt.Errorf("scribe: empty category")
	}
	if err := b.ensureCategory(m.Category); err != nil {
		return 0, err
	}
	lsn, _, err := b.store.AppendToken(streamName(m.Category), m.Token, m.Payload)
	if err != nil {
		return 0, err
	}
	// A failed attempt (including a torn ack) counts nothing, so the
	// eventual success — fresh append or ledger dedup — counts exactly
	// once.
	b.MessagesIn.Inc()
	b.BytesIn.Add(int64(len(m.Payload)))
	return lsn, nil
}

// Categories lists categories seen so far.
func (b *Bus) Categories() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.categories))
	for c := range b.categories {
		out = append(out, c)
	}
	return out
}

// CloseCategory marks a category as ended by its producer: further
// Publishes fail, and consumers that drained to the tail can treat the
// category as complete rather than idle. Closing is idempotent and
// creates the backing stream if it does not exist yet, so a producer
// that logged nothing can still signal end-of-stream.
func (b *Bus) CloseCategory(category string) error {
	if category == "" {
		return fmt.Errorf("scribe: empty category")
	}
	if err := b.ensureCategory(category); err != nil {
		return err
	}
	return b.store.Seal(streamName(category))
}

// Closed reports whether the category has been closed by its producer.
// A category that was never published to reports false.
func (b *Bus) Closed(category string) bool {
	sealed, err := b.store.IsSealed(streamName(category))
	return err == nil && sealed
}

// Changed returns a channel closed on the category's next append or
// close, letting tailing consumers idle without busy-polling. The
// category must exist.
func (b *Bus) Changed(category string) (<-chan struct{}, error) {
	return b.store.Changed(streamName(category))
}

// Tail returns up to max messages from the category starting at LSN from.
func (b *Bus) Tail(category string, from logdevice.LSN, max int) ([]logdevice.Record, error) {
	return b.store.ReadFrom(streamName(category), from, max)
}

// TailLSN reports one past the last LSN in the category.
func (b *Bus) TailLSN(category string) (logdevice.LSN, error) {
	return b.store.Tail(streamName(category))
}

// Trim deletes category records up to and including upTo, releasing
// storage once downstream ETL has consumed them.
func (b *Bus) Trim(category string, upTo logdevice.LSN) error {
	return b.store.Trim(streamName(category), upTo)
}

// Publisher is the daemon's view of the bus: a sink for one message at a
// time. It is an interface so tests can inject failing or blocking
// publishers to exercise the flush error paths.
type Publisher interface {
	Publish(m Message) (logdevice.LSN, error)
}

// breaker is one category's circuit-breaker state: consecutive publish
// failures, and the capped-exponential window the category stays open
// (fast-failing) for after tripping.
type breaker struct {
	fails     int
	window    time.Duration
	openUntil time.Time
}

// Daemon is the per-host buffering agent. Services call Log; the daemon
// batches messages and flushes them to the bus, preserving order within a
// category. Three mechanisms keep a producing service available while
// LogDevice misbehaves: a per-category circuit breaker with capped
// exponential backoff (a down store is not hot-polled — flushes defer
// the category and touch nothing), watermark backpressure (crossing the
// high watermark makes the logging call pay a synchronous flush until
// the buffer falls below the low watermark), and counted shedding (with
// the breaker open and the buffer at its limit, new messages are shed
// rather than wedging the producer).
type Daemon struct {
	Host string

	bus Publisher

	// flushMu serializes flushes: two concurrent flushes would otherwise
	// interleave their batches and reorder a category.
	flushMu sync.Mutex

	mu      sync.Mutex
	pending []Message
	// FlushThreshold is the number of buffered messages that triggers an
	// automatic flush.
	FlushThreshold int

	// Dropped counts messages rejected because the buffer is full (while
	// the breaker is closed — transient pressure, not a down store).
	Dropped metrics.Counter
	// BufferLimit caps pending messages; zero means unlimited.
	BufferLimit int

	// HighWatermark, when > 0, arms backpressure: once the buffer
	// reaches it, every Log performs a synchronous flush until the
	// buffer falls to LowWatermark (default HighWatermark/2).
	HighWatermark int
	LowWatermark  int
	backpressured bool

	// BreakerThreshold is the consecutive publish failures that trip a
	// category's breaker (default 2). BreakerBase is the first open
	// window, doubling per re-trip up to BreakerMax (defaults 5ms /
	// 500ms).
	BreakerThreshold int
	BreakerBase      time.Duration
	BreakerMax       time.Duration
	// Now is the breaker's clock; nil means time.Now. Tests inject a
	// fake to pin backoff behaviour.
	Now func() time.Time

	breakers map[string]*breaker
	seq      int64

	// Shed counts messages shed because the buffer was full while the
	// category's breaker was open — the store is down and staying down,
	// so the daemon sheds load instead of blocking the service.
	Shed metrics.Counter
	// BreakerOpens counts breaker trips to the open state.
	BreakerOpens metrics.Counter
}

// NewDaemon returns a daemon for host publishing to bus.
func NewDaemon(host string, bus *Bus) *Daemon {
	return &Daemon{Host: host, bus: bus, FlushThreshold: 256}
}

func (d *Daemon) clockNow() time.Time {
	if d.Now != nil {
		return d.Now()
	}
	return time.Now()
}

func (d *Daemon) breakerThreshold() int {
	if d.BreakerThreshold > 0 {
		return d.BreakerThreshold
	}
	return 2
}

func (d *Daemon) breakerBase() time.Duration {
	if d.BreakerBase > 0 {
		return d.BreakerBase
	}
	return 5 * time.Millisecond
}

func (d *Daemon) breakerMax() time.Duration {
	if d.BreakerMax > 0 {
		return d.BreakerMax
	}
	return 500 * time.Millisecond
}

// breakerOpenLocked reports whether category's breaker is open at now.
// Callers must hold d.mu.
func (d *Daemon) breakerOpenLocked(category string, now time.Time) bool {
	br := d.breakers[category]
	return br != nil && now.Before(br.openUntil)
}

// recordFailure counts one publish failure against category's breaker,
// tripping it open (with a doubling, capped window) at the threshold.
func (d *Daemon) recordFailure(category string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.breakers == nil {
		d.breakers = make(map[string]*breaker)
	}
	br := d.breakers[category]
	if br == nil {
		br = &breaker{}
		d.breakers[category] = br
	}
	br.fails++
	if br.fails < d.breakerThreshold() {
		return
	}
	if br.window == 0 {
		br.window = d.breakerBase()
	} else if br.window < d.breakerMax() {
		br.window *= 2
		if br.window > d.breakerMax() {
			br.window = d.breakerMax()
		}
	}
	br.openUntil = d.clockNow().Add(br.window)
	d.BreakerOpens.Inc()
}

// recordSuccess resets category's breaker after a successful publish.
func (d *Daemon) recordSuccess(category string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if br := d.breakers[category]; br != nil && (br.fails > 0 || br.window > 0) {
		br.fails = 0
		br.window = 0
		br.openUntil = time.Time{}
	}
}

// Log buffers one message, flushing if the threshold (or an armed high
// watermark) is reached. If the buffer is at its limit the message is
// shed and counted — against Shed when the category's breaker is open
// (LogDevice is down and staying down), against Dropped otherwise —
// Scribe favours availability of the producing service over delivery
// guarantees. Transient flush failures are absorbed: the messages stay
// buffered for a later retry and the producer is not failed.
func (d *Daemon) Log(category string, payload []byte) error {
	d.mu.Lock()
	if d.BufferLimit > 0 && len(d.pending) >= d.BufferLimit {
		shed := d.breakerOpenLocked(category, d.clockNow())
		d.mu.Unlock()
		if shed {
			d.Shed.Inc()
		} else {
			d.Dropped.Inc()
		}
		return nil
	}
	d.seq++
	d.pending = append(d.pending, Message{
		Category: category,
		Payload:  payload,
		Token:    fmt.Sprintf("%s/%d", d.Host, d.seq),
	})
	n := len(d.pending)
	if d.HighWatermark > 0 {
		if n >= d.HighWatermark {
			d.backpressured = true
		} else {
			low := d.LowWatermark
			if low <= 0 {
				low = d.HighWatermark / 2
			}
			if n <= low {
				d.backpressured = false
			}
		}
	}
	shouldFlush := n >= d.FlushThreshold ||
		(d.backpressured && !d.breakerOpenLocked(category, d.clockNow()))
	d.mu.Unlock()
	if shouldFlush {
		if err := d.Flush(); err != nil && !Retryable(err) {
			return err
		}
	}
	return nil
}

// Flush publishes all buffered messages in order. Flushes are serialized
// so concurrent callers cannot interleave their batches within a
// category; if a publish fails mid-batch the unpublished remainder
// (including the failed message) is requeued at the head of the buffer,
// ahead of anything logged meanwhile, so nothing is lost and order holds
// per category. Categories whose breaker is open are deferred wholesale —
// their messages are requeued untouched and LogDevice is not polled —
// and the flush reports ErrDeferred if everything else published.
func (d *Daemon) Flush() error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	d.mu.Lock()
	batch := d.pending
	d.pending = nil
	now := d.clockNow()
	var blocked map[string]bool
	for cat, br := range d.breakers {
		if now.Before(br.openUntil) {
			if blocked == nil {
				blocked = make(map[string]bool)
			}
			blocked[cat] = true
		}
	}
	d.mu.Unlock()

	var kept []Message // deferred messages, in order
	for i, m := range batch {
		if blocked[m.Category] {
			kept = append(kept, m)
			continue
		}
		if _, err := d.bus.Publish(m); err != nil {
			d.recordFailure(m.Category)
			d.mu.Lock()
			requeued := make([]Message, 0, len(kept)+len(batch)-i+len(d.pending))
			requeued = append(requeued, kept...)
			requeued = append(requeued, batch[i:]...)
			requeued = append(requeued, d.pending...)
			d.pending = requeued
			d.mu.Unlock()
			return fmt.Errorf("scribe: flush from %s: %w", d.Host, err)
		}
		d.recordSuccess(m.Category)
	}
	if len(kept) > 0 {
		d.mu.Lock()
		requeued := make([]Message, 0, len(kept)+len(d.pending))
		requeued = append(requeued, kept...)
		requeued = append(requeued, d.pending...)
		d.pending = requeued
		d.mu.Unlock()
		return fmt.Errorf("scribe: flush from %s held %d messages: %w", d.Host, len(kept), ErrDeferred)
	}
	return nil
}

// DrainFlush flushes until the buffer is empty, honouring breaker
// backoff between attempts (the store is polled only when a breaker
// window has passed), or until the deadline. Producers use it at
// end-of-stream so a transient storm cannot strand buffered messages.
func (d *Daemon) DrainFlush(timeout time.Duration) error {
	deadline := d.clockNow().Add(timeout)
	for {
		err := d.Flush()
		if err == nil && d.PendingCount() == 0 {
			return nil
		}
		if err != nil && !Retryable(err) {
			return err
		}
		if !d.clockNow().Before(deadline) {
			return fmt.Errorf("scribe: drain from %s timed out with %d messages buffered (last: %v)",
				d.Host, d.PendingCount(), err)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// PendingCount reports buffered messages awaiting flush.
func (d *Daemon) PendingCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
