// Package scribe implements a distributed messaging layer in the style of
// Meta's Scribe (§3.1.1 of the paper): services write raw feature and
// event logs to a local daemon, which groups them into record-oriented
// logical streams ("categories") and persists each stream in LogDevice.
//
// Consumers (the ETL jobs in internal/etl) tail categories by LSN.
package scribe

import (
	"fmt"
	"sync"

	"dsi/internal/logdevice"
	"dsi/internal/metrics"
)

// Message is one log entry produced by a service.
type Message struct {
	// Category routes the message to a logical stream (e.g.
	// "rm1/features", "rm1/events").
	Category string
	// Payload is the serialized log line.
	Payload []byte
}

// Bus routes messages from many daemons into per-category LogDevice
// streams.
type Bus struct {
	store *logdevice.Store

	mu         sync.Mutex
	categories map[string]bool

	// MessagesIn counts messages accepted across all daemons.
	MessagesIn metrics.Counter
	// BytesIn counts payload bytes accepted.
	BytesIn metrics.Counter
}

// NewBus returns a bus persisting into store.
func NewBus(store *logdevice.Store) *Bus {
	return &Bus{store: store, categories: make(map[string]bool)}
}

// ensureCategory creates the backing stream on first use.
func (b *Bus) ensureCategory(category string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.categories[category] {
		return nil
	}
	if err := b.store.CreateStream(streamName(category)); err != nil {
		return err
	}
	b.categories[category] = true
	return nil
}

func streamName(category string) string { return "scribe/" + category }

// Publish writes one message to its category's stream.
func (b *Bus) Publish(m Message) (logdevice.LSN, error) {
	if m.Category == "" {
		return 0, fmt.Errorf("scribe: empty category")
	}
	if err := b.ensureCategory(m.Category); err != nil {
		return 0, err
	}
	lsn, err := b.store.Append(streamName(m.Category), m.Payload)
	if err != nil {
		return 0, err
	}
	b.MessagesIn.Inc()
	b.BytesIn.Add(int64(len(m.Payload)))
	return lsn, nil
}

// Categories lists categories seen so far.
func (b *Bus) Categories() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.categories))
	for c := range b.categories {
		out = append(out, c)
	}
	return out
}

// CloseCategory marks a category as ended by its producer: further
// Publishes fail, and consumers that drained to the tail can treat the
// category as complete rather than idle. Closing is idempotent and
// creates the backing stream if it does not exist yet, so a producer
// that logged nothing can still signal end-of-stream.
func (b *Bus) CloseCategory(category string) error {
	if category == "" {
		return fmt.Errorf("scribe: empty category")
	}
	if err := b.ensureCategory(category); err != nil {
		return err
	}
	return b.store.Seal(streamName(category))
}

// Closed reports whether the category has been closed by its producer.
// A category that was never published to reports false.
func (b *Bus) Closed(category string) bool {
	sealed, err := b.store.IsSealed(streamName(category))
	return err == nil && sealed
}

// Changed returns a channel closed on the category's next append or
// close, letting tailing consumers idle without busy-polling. The
// category must exist.
func (b *Bus) Changed(category string) (<-chan struct{}, error) {
	return b.store.Changed(streamName(category))
}

// Tail returns up to max messages from the category starting at LSN from.
func (b *Bus) Tail(category string, from logdevice.LSN, max int) ([]logdevice.Record, error) {
	return b.store.ReadFrom(streamName(category), from, max)
}

// TailLSN reports one past the last LSN in the category.
func (b *Bus) TailLSN(category string) (logdevice.LSN, error) {
	return b.store.Tail(streamName(category))
}

// Trim deletes category records up to and including upTo, releasing
// storage once downstream ETL has consumed them.
func (b *Bus) Trim(category string, upTo logdevice.LSN) error {
	return b.store.Trim(streamName(category), upTo)
}

// Publisher is the daemon's view of the bus: a sink for one message at a
// time. It is an interface so tests can inject failing or blocking
// publishers to exercise the flush error paths.
type Publisher interface {
	Publish(m Message) (logdevice.LSN, error)
}

// Daemon is the per-host buffering agent. Services call Log; the daemon
// batches messages and flushes them to the bus, preserving order within a
// category.
type Daemon struct {
	Host string

	bus Publisher

	// flushMu serializes flushes: two concurrent flushes would otherwise
	// interleave their batches and reorder a category.
	flushMu sync.Mutex

	mu      sync.Mutex
	pending []Message
	// FlushThreshold is the number of buffered messages that triggers an
	// automatic flush.
	FlushThreshold int

	// Dropped counts messages rejected because the buffer is full.
	Dropped metrics.Counter
	// BufferLimit caps pending messages; zero means unlimited.
	BufferLimit int
}

// NewDaemon returns a daemon for host publishing to bus.
func NewDaemon(host string, bus *Bus) *Daemon {
	return &Daemon{Host: host, bus: bus, FlushThreshold: 256}
}

// Log buffers one message, flushing if the threshold is reached. If the
// buffer is at its limit the message is dropped and counted — Scribe
// favours availability of the producing service over delivery guarantees.
func (d *Daemon) Log(category string, payload []byte) error {
	d.mu.Lock()
	if d.BufferLimit > 0 && len(d.pending) >= d.BufferLimit {
		d.mu.Unlock()
		d.Dropped.Inc()
		return nil
	}
	d.pending = append(d.pending, Message{Category: category, Payload: payload})
	shouldFlush := len(d.pending) >= d.FlushThreshold
	d.mu.Unlock()
	if shouldFlush {
		return d.Flush()
	}
	return nil
}

// Flush publishes all buffered messages in order. Flushes are serialized
// so concurrent callers cannot interleave their batches within a
// category; if a publish fails mid-batch the unpublished remainder
// (including the failed message) is requeued at the head of the buffer,
// ahead of anything logged meanwhile, so nothing is lost and order holds.
func (d *Daemon) Flush() error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	d.mu.Lock()
	batch := d.pending
	d.pending = nil
	d.mu.Unlock()
	for i, m := range batch {
		if _, err := d.bus.Publish(m); err != nil {
			d.mu.Lock()
			rest := batch[i:]
			requeued := make([]Message, 0, len(rest)+len(d.pending))
			requeued = append(requeued, rest...)
			requeued = append(requeued, d.pending...)
			d.pending = requeued
			d.mu.Unlock()
			return fmt.Errorf("scribe: flush from %s: %w", d.Host, err)
		}
	}
	return nil
}

// PendingCount reports buffered messages awaiting flush.
func (d *Daemon) PendingCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
