package scribe

import (
	"fmt"
	"sync"
	"testing"

	"dsi/internal/logdevice"
)

func newBus() *Bus { return NewBus(logdevice.NewStore()) }

func TestPublishAndTail(t *testing.T) {
	b := newBus()
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(Message{Category: "rm1/features", Payload: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := b.Tail("rm1/features", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || string(recs[0].Payload) != "m0" || string(recs[4].Payload) != "m4" {
		t.Fatalf("Tail = %+v", recs)
	}
}

func TestPublishEmptyCategory(t *testing.T) {
	b := newBus()
	if _, err := b.Publish(Message{Payload: []byte("x")}); err == nil {
		t.Fatal("empty category accepted")
	}
}

func TestCategoriesIsolated(t *testing.T) {
	b := newBus()
	if _, err := b.Publish(Message{Category: "a", Payload: []byte("in-a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(Message{Category: "b", Payload: []byte("in-b")}); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Tail("a", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "in-a" {
		t.Fatalf("category a = %+v", recs)
	}
	if got := len(b.Categories()); got != 2 {
		t.Fatalf("Categories = %d, want 2", got)
	}
}

func TestBusCounters(t *testing.T) {
	b := newBus()
	if _, err := b.Publish(Message{Category: "c", Payload: []byte("12345")}); err != nil {
		t.Fatal(err)
	}
	if b.MessagesIn.Value() != 1 || b.BytesIn.Value() != 5 {
		t.Fatalf("counters = %d msgs, %d bytes", b.MessagesIn.Value(), b.BytesIn.Value())
	}
}

func TestTrimReleases(t *testing.T) {
	b := newBus()
	for i := 0; i < 4; i++ {
		if _, err := b.Publish(Message{Category: "c", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Trim("c", 2); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Tail("c", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("Tail after trim = %+v", recs)
	}
}

func TestTailLSN(t *testing.T) {
	b := newBus()
	if _, err := b.Publish(Message{Category: "c", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	lsn, err := b.TailLSN("c")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Fatalf("TailLSN = %d, want 2", lsn)
	}
}

func TestDaemonBuffersAndFlushes(t *testing.T) {
	b := newBus()
	d := NewDaemon("host1", b)
	d.FlushThreshold = 3
	if err := d.Log("c", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Log("c", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if got := d.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
	if b.MessagesIn.Value() != 0 {
		t.Fatal("messages published before threshold")
	}
	if err := d.Log("c", []byte("3")); err != nil { // triggers flush
		t.Fatal(err)
	}
	if got := d.PendingCount(); got != 0 {
		t.Fatalf("PendingCount after flush = %d, want 0", got)
	}
	if b.MessagesIn.Value() != 3 {
		t.Fatalf("MessagesIn = %d, want 3", b.MessagesIn.Value())
	}
}

func TestDaemonExplicitFlushPreservesOrder(t *testing.T) {
	b := newBus()
	d := NewDaemon("host1", b)
	for i := 0; i < 5; i++ {
		if err := d.Log("c", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Tail("c", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if string(r.Payload) != fmt.Sprintf("%d", i) {
			t.Fatalf("record %d = %q", i, r.Payload)
		}
	}
}

func TestDaemonDropsAtLimit(t *testing.T) {
	b := newBus()
	d := NewDaemon("host1", b)
	d.FlushThreshold = 1000
	d.BufferLimit = 2
	for i := 0; i < 5; i++ {
		if err := d.Log("c", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Dropped.Value(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if got := d.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
}

// hookedPublisher records publishes and lets tests inject failures or
// blocking at arbitrary points in a flush.
type hookedPublisher struct {
	mu        sync.Mutex
	published []string
	onPublish func(payload string) error
}

func (p *hookedPublisher) Publish(m Message) (logdevice.LSN, error) {
	if p.onPublish != nil {
		if err := p.onPublish(string(m.Payload)); err != nil {
			return 0, err
		}
	}
	p.mu.Lock()
	p.published = append(p.published, string(m.Payload))
	p.mu.Unlock()
	return 0, nil
}

func (p *hookedPublisher) got() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.published...)
}

// Regression: a publish failure mid-flush must requeue the unpublished
// remainder (including the failed message) at the head of the buffer —
// the seed dropped the detached tail on the floor.
func TestFlushRequeuesUnsentTailOnError(t *testing.T) {
	p := &hookedPublisher{}
	failing := true
	p.onPublish = func(payload string) error {
		if failing && payload == "2" {
			return fmt.Errorf("injected publish failure")
		}
		return nil
	}
	d := &Daemon{Host: "h", bus: p, FlushThreshold: 1000}
	for i := 0; i < 5; i++ {
		if err := d.Log("c", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err == nil {
		t.Fatal("Flush succeeded despite injected failure")
	}
	if got := d.PendingCount(); got != 3 { // "2","3","4" requeued
		t.Fatalf("PendingCount after failed flush = %d, want 3", got)
	}
	// Messages logged after the failure must land behind the requeued tail.
	if err := d.Log("c", []byte("5")); err != nil {
		t.Fatal(err)
	}
	failing = false
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "1", "2", "3", "4", "5"}
	if got := p.got(); len(got) != len(want) {
		t.Fatalf("published = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("published = %v, want %v", got, want)
			}
		}
	}
}

// Regression: two concurrent flushes must not interleave their batches —
// the seed detached both batches and published them racily, reordering
// the category.
func TestConcurrentFlushesSerialized(t *testing.T) {
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	p := &hookedPublisher{}
	p.onPublish = func(string) error {
		once.Do(func() {
			close(entered)
			<-gate
		})
		return nil
	}
	d := &Daemon{Host: "h", bus: p, FlushThreshold: 1000}
	for i := 0; i < 3; i++ {
		if err := d.Log("c", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.Flush(); err != nil {
			t.Error(err)
		}
	}()
	<-entered // first flush is mid-batch, blocked inside Publish
	for i := 3; i < 5; i++ {
		if err := d.Log("c", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.Flush(); err != nil {
			t.Error(err)
		}
	}()
	close(gate)
	wg.Wait()
	got := p.got()
	if len(got) != 5 {
		t.Fatalf("published %d messages, want 5: %v", len(got), got)
	}
	for i, payload := range got {
		if payload != fmt.Sprintf("%d", i) {
			t.Fatalf("interleaved flushes reordered category: %v", got)
		}
	}
}

func TestCloseCategory(t *testing.T) {
	b := newBus()
	if _, err := b.Publish(Message{Category: "c", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if b.Closed("c") {
		t.Fatal("category closed before CloseCategory")
	}
	if err := b.CloseCategory("c"); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseCategory("c"); err != nil { // idempotent
		t.Fatal(err)
	}
	if !b.Closed("c") {
		t.Fatal("Closed = false after CloseCategory")
	}
	if _, err := b.Publish(Message{Category: "c", Payload: []byte("y")}); err == nil {
		t.Fatal("publish to closed category accepted")
	}
	// Existing records stay readable.
	recs, err := b.Tail("c", 1, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("Tail after close = %v, %v", recs, err)
	}
	// Closing a never-published category creates it so consumers see EOF.
	if err := b.CloseCategory("empty"); err != nil {
		t.Fatal(err)
	}
	if !b.Closed("empty") {
		t.Fatal("empty category not closed")
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := newBus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := b.Publish(Message{Category: "c", Payload: []byte("x")}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.MessagesIn.Value(); got != 800 {
		t.Fatalf("MessagesIn = %d, want 800", got)
	}
	recs, err := b.Tail("c", 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 800 {
		t.Fatalf("Tail = %d records, want 800", len(recs))
	}
}
