package scribe

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dsi/internal/logdevice"
	"dsi/internal/tectonic/faults"
)

// countingPublisher fails every publish and counts the attempts, standing
// in for a LogDevice that is down and staying down.
type countingPublisher struct {
	mu       sync.Mutex
	attempts int
	err      error
}

func (p *countingPublisher) Publish(m Message) (logdevice.LSN, error) {
	p.mu.Lock()
	p.attempts++
	n, err := p.attempts, p.err
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return logdevice.LSN(n), nil
}

// TestFlushBackoffNotHotPolled pins the satellite fix: once a category's
// breaker opens, flushes defer the category without touching the bus —
// a down LogDevice is not hot-polled — until the backoff window passes.
func TestFlushBackoffNotHotPolled(t *testing.T) {
	pub := &countingPublisher{err: faults.ErrNodeDown}
	clock := time.Unix(1000, 0)
	d := &Daemon{
		Host:           "web1",
		bus:            pub,
		FlushThreshold: 100,
		Now:            func() time.Time { return clock },
	}
	d.Log("cat", []byte("a"))
	d.Log("cat", []byte("b"))

	// Two failed flushes trip the breaker (threshold defaults to 2).
	for i := 0; i < 2; i++ {
		if err := d.Flush(); !errors.Is(err, faults.ErrNodeDown) {
			t.Fatalf("flush %d: %v, want ErrNodeDown", i, err)
		}
	}
	if pub.attempts != 2 {
		t.Fatalf("publish attempts before breaker opened: %d, want 2", pub.attempts)
	}
	if d.BreakerOpens.Value() == 0 {
		t.Fatal("breaker never opened")
	}

	// With the breaker open, flushes must defer without a single bus call.
	for i := 0; i < 50; i++ {
		err := d.Flush()
		if !errors.Is(err, ErrDeferred) {
			t.Fatalf("flush under open breaker: %v, want ErrDeferred", err)
		}
		if !Retryable(err) {
			t.Fatal("deferred flush not classified retryable")
		}
	}
	if pub.attempts != 2 {
		t.Fatalf("open breaker hot-polled the store: %d attempts, want 2", pub.attempts)
	}
	if d.PendingCount() != 2 {
		t.Fatalf("deferred messages lost: %d pending, want 2", d.PendingCount())
	}

	// Advance past the window and heal the store: the retry goes through
	// in order.
	clock = clock.Add(time.Second)
	pub.err = nil
	if err := d.Flush(); err != nil {
		t.Fatalf("flush after window: %v", err)
	}
	if d.PendingCount() != 0 {
		t.Fatalf("%d messages still pending after healed flush", d.PendingCount())
	}
}

// categoryPublisher records the categories of successful publishes and
// fails by category.
type categoryPublisher struct {
	published []string
	onPublish func(category string) error
}

func (p *categoryPublisher) Publish(m Message) (logdevice.LSN, error) {
	if p.onPublish != nil {
		if err := p.onPublish(m.Category); err != nil {
			return 0, err
		}
	}
	p.published = append(p.published, m.Category)
	return 0, nil
}

// TestBreakerPerCategoryIsolation: an open breaker on one category must
// not block flushing of a healthy one.
func TestBreakerPerCategoryIsolation(t *testing.T) {
	fail := true
	pub := &categoryPublisher{onPublish: func(cat string) error {
		if cat == "sick" && fail {
			return faults.ErrNodeIO
		}
		return nil
	}}
	clock := time.Unix(1000, 0)
	d := &Daemon{
		Host:           "web1",
		bus:            pub,
		FlushThreshold: 100,
		Now:            func() time.Time { return clock },
	}
	d.Log("sick", []byte("s1"))
	for i := 0; i < 2; i++ {
		if err := d.Flush(); err == nil {
			t.Fatalf("flush %d unexpectedly succeeded", i)
		}
	}

	// sick's breaker is open; healthy traffic must still flow.
	d.Log("ok", []byte("o1"))
	d.Log("ok", []byte("o2"))
	if err := d.Flush(); !errors.Is(err, ErrDeferred) {
		t.Fatalf("mixed flush: %v, want ErrDeferred for the sick category", err)
	}
	if len(pub.published) != 2 || pub.published[0] != "ok" || pub.published[1] != "ok" {
		t.Fatalf("healthy category blocked: published %v", pub.published)
	}
	if d.PendingCount() != 1 {
		t.Fatalf("pending %d, want just the deferred sick message", d.PendingCount())
	}

	// Heal: deferred message delivered after the window.
	clock = clock.Add(time.Second)
	fail = false
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(pub.published) != 3 || pub.published[2] != "sick" {
		t.Fatalf("deferred sick message not delivered: %v", pub.published)
	}
}

// TestDaemonShedsWhenLogDeviceStaysDown: with the breaker open and the
// buffer full, new messages are counted as shed (not silently confused
// with ordinary drops).
func TestDaemonShedsWhenLogDeviceStaysDown(t *testing.T) {
	pub := &countingPublisher{err: faults.ErrNodeDown}
	clock := time.Unix(1000, 0)
	d := &Daemon{
		Host:           "web1",
		bus:            pub,
		FlushThreshold: 100,
		BufferLimit:    3,
		Now:            func() time.Time { return clock },
	}
	for i := 0; i < 3; i++ {
		d.Log("cat", []byte{byte(i)})
	}
	for i := 0; i < 2; i++ {
		d.Flush()
	}

	// Buffer full, breaker open: sheds, not drops.
	for i := 0; i < 5; i++ {
		if err := d.Log("cat", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Shed.Value(); got != 5 {
		t.Fatalf("Shed = %d, want 5", got)
	}
	if got := d.Dropped.Value(); got != 0 {
		t.Fatalf("Dropped = %d, want 0 (store-down overflow is shedding)", got)
	}
	// The buffered originals survive the storm.
	clock = clock.Add(time.Second)
	pub.err = nil
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if pub.attempts != 2+3 {
		t.Fatalf("publish attempts %d, want 5 (2 failed + 3 delivered)", pub.attempts)
	}
}

// TestDaemonWatermarkBackpressure: crossing the high watermark makes
// logging pay a synchronous flush until the buffer drains below the low
// watermark.
func TestDaemonWatermarkBackpressure(t *testing.T) {
	pub := &categoryPublisher{}
	d := &Daemon{
		Host:           "web1",
		bus:            pub,
		FlushThreshold: 1000, // never reached; watermark must trigger the flush
		HighWatermark:  4,
	}
	for i := 0; i < 4; i++ {
		if err := d.Log("cat", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(pub.published) != 4 {
		t.Fatalf("watermark did not force a flush: %d published", len(pub.published))
	}
	if d.PendingCount() != 0 {
		t.Fatalf("pending %d after backpressure flush", d.PendingCount())
	}
	// Below the low watermark the daemon buffers again.
	if err := d.Log("cat", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(pub.published) != 4 || d.PendingCount() != 1 {
		t.Fatalf("backpressure did not disarm: published=%d pending=%d", len(pub.published), d.PendingCount())
	}
}

// TestTornAckNoDuplicateThroughBus: a torn ack from LogDevice retried
// through the daemon's requeue path must not duplicate the record —
// the message token dedups on the second publish.
func TestTornAckNoDuplicateThroughBus(t *testing.T) {
	store := logdevice.NewStore()
	store.SetWriteFaults(faults.NewSchedule(7).TornWrites(0, 0, 0, 1), nil)
	bus := NewBus(store)
	d := NewDaemon("web1", bus)

	if err := d.Log("cat", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	err := d.Flush()
	if !errors.Is(err, faults.ErrTornAck) {
		t.Fatalf("flush under p=1 torn acks: %v, want ErrTornAck", err)
	}
	if d.PendingCount() != 1 {
		t.Fatalf("torn message not requeued: pending=%d", d.PendingCount())
	}
	// Lift the storm; the retry dedups against the token ledger.
	store.SetWriteFaults(faults.NewSchedule(7), nil)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := store.ReadFrom(streamName("cat"), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "hello" {
		t.Fatalf("stream holds %d records after torn-ack retry, want exactly 1", len(recs))
	}
	if got := bus.MessagesIn.Value(); got != 1 {
		t.Fatalf("MessagesIn = %d, want 1", got)
	}
}

// TestDrainFlushDeliversAfterStorm: DrainFlush keeps retrying through
// breaker windows until the buffer empties.
func TestDrainFlushDeliversAfterStorm(t *testing.T) {
	pub := &countingPublisher{err: faults.ErrNodeIO}
	d := &Daemon{
		Host:           "web1",
		bus:            pub,
		FlushThreshold: 100,
		BreakerBase:    time.Millisecond,
		BreakerMax:     2 * time.Millisecond,
	}
	d.Log("cat", []byte("a"))
	// Heal the store shortly; DrainFlush should ride out the failures.
	go func() {
		time.Sleep(5 * time.Millisecond)
		pub.mu.Lock()
		pub.err = nil
		pub.mu.Unlock()
	}()
	if err := d.DrainFlush(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d.PendingCount() != 0 {
		t.Fatalf("drain left %d pending", d.PendingCount())
	}
}
