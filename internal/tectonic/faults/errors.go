package faults

import "errors"

// Canonical storage-error taxonomy, shared by every layer that talks to
// faulted storage (tectonic chunk I/O, logdevice appends). The sentinels
// live here — below both — so logdevice can classify errors without
// importing tectonic; tectonic re-exports them under its historical
// names, and the message text keeps the "tectonic:" prefix those aliases
// established so wrapped errors render identically.
var (
	// ErrNodeDown marks an I/O addressed to a node that is offline.
	ErrNodeDown = errors.New("tectonic: node down")
	// ErrNodeIO marks a transient per-I/O failure on a flaky node.
	ErrNodeIO = errors.New("tectonic: transient I/O error")
	// ErrCorrupt marks data that failed checksum verification.
	ErrCorrupt = errors.New("tectonic: corrupt data")
	// ErrAllReplicas marks an I/O that exhausted its attempt budget
	// across every replica.
	ErrAllReplicas = errors.New("tectonic: all replicas failed")
	// ErrTornAck marks an append whose bytes landed but whose
	// acknowledgement was lost: the write IS durable, the writer just
	// doesn't know it. Retryable by definition — a tokened retry
	// deduplicates against the landed bytes instead of double-appending.
	ErrTornAck = errors.New("tectonic: append acknowledgement lost")
)

// IsRetryable reports whether a storage error is worth retrying — on
// another replica, after a backoff, or by re-driving the append with the
// same write token. Node loss, transient I/O errors, corruption (other
// replicas may hold good bytes), torn acknowledgements (the token dedups
// the landed bytes), and whole-replica-set exhaustion (nodes recover)
// are retryable; unknown paths, sealed-file writes, and out-of-range
// reads are permanent.
func IsRetryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrNodeDown), errors.Is(err, ErrNodeIO),
		errors.Is(err, ErrCorrupt), errors.Is(err, ErrAllReplicas),
		errors.Is(err, ErrTornAck):
		return true
	}
	return false
}
