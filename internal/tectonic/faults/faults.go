// Package faults models storage-node failure as data: a Schedule is a
// seeded, deterministic timetable of per-node fault windows on the
// cluster's virtual clock. The tectonic read path consults it on every
// chunk I/O, so chaos runs are exactly reproducible — same seed, same
// schedule, same byte-level outcome — which is what lets the chaos e2e
// assert exact checksums while nodes brown out underneath it.
//
// Four fault states cover the paper's operational reality (§7.1 keeps
// three replicas precisely because nodes die, straggle, and rot):
//
//   - Down: every read addressed to the node fails with ErrNodeDown.
//   - Flaky: reads fail with a seeded probability (transient I/O errors).
//   - Slow: reads complete, but service latency is multiplied (brownout /
//     straggler) — the trigger for hedged reads.
//   - Corrupting: reads return the stored bytes with a deterministically
//     chosen bit flipped (silent corruption; only checksums catch it).
//
// Four more states are write-shaped and visible only through WriteState,
// mirroring the same design onto the append path: WriteFailing (appends
// fail cleanly), WriteTorn (appends land but the ack is lost — the case
// that forces idempotent write tokens), WriteSlow (write brownout), and
// SealFlaky (metadata-plane seal failures, keyed to MetaNode). Read and
// write storms compose on one schedule without perturbing each other;
// Down is the one state both views share.
//
// All randomness is derived by hashing the seed with the identity of the
// read (node, stream, offset, attempt), never from shared RNG state, so
// outcomes do not depend on goroutine interleaving.
package faults

import (
	"time"
)

// State is a node's health at one instant of virtual time.
type State int

const (
	// Healthy serves reads normally.
	Healthy State = iota
	// Down fails every read.
	Down
	// Flaky fails reads with probability Window.ErrProb.
	Flaky
	// Slow serves reads with latency multiplied by Window.SlowFactor.
	Slow
	// Corrupting serves reads with one bit flipped.
	Corrupting

	// The states below are write-shaped: they are matched only by
	// WriteState (the write path's view of a node) and are invisible to
	// NodeState, so a write storm never perturbs read behaviour — and
	// vice versa. Down is the one state both views share.

	// WriteFailing fails appends with probability Window.ErrProb before
	// any byte is applied (a clean write error).
	WriteFailing
	// WriteTorn applies the append to every replica, then fails the
	// acknowledgement with probability Window.ErrProb (a torn ack): the
	// bytes are durable but the writer sees an error. Only tokened
	// retries recover without duplicating.
	WriteTorn
	// WriteSlow serves appends but counts a brownout occurrence
	// (slow-write accounting; appends carry no device-time model).
	WriteSlow
	// SealFlaky fails file seals with probability Window.ErrProb. Seal
	// is a metadata operation, so SealFlaky windows are keyed to the
	// MetaNode pseudo-node rather than a storage node.
	SealFlaky
)

// MetaNode is the pseudo-node identity for metadata-plane fault windows
// (seal failures), which have no storage node to attach to.
const MetaNode = -1

// String names the state for logs and test output.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Down:
		return "down"
	case Flaky:
		return "flaky"
	case Slow:
		return "slow"
	case Corrupting:
		return "corrupting"
	case WriteFailing:
		return "write-failing"
	case WriteTorn:
		return "write-torn"
	case WriteSlow:
		return "write-slow"
	case SealFlaky:
		return "seal-flaky"
	}
	return "unknown"
}

// WriteShaped reports whether the state applies to the write path only.
func (s State) WriteShaped() bool {
	return s >= WriteFailing && s <= SealFlaky
}

// Window puts one node into a fault state for a span of virtual time.
// Until <= From means "until forever". When windows overlap, the
// latest-added one wins.
type Window struct {
	Node  int
	State State
	From  time.Duration
	Until time.Duration
	// ErrProb is the per-read failure probability for Flaky windows
	// (default 0.5).
	ErrProb float64
	// SlowFactor multiplies read service latency for Slow windows
	// (default 4).
	SlowFactor float64
}

// active reports whether the window covers virtual time now.
func (w Window) active(now time.Duration) bool {
	return now >= w.From && (w.Until <= w.From || now < w.Until)
}

// Schedule is a seeded timetable of fault windows. The zero value and
// the nil schedule are both "no faults ever". Schedules are built once
// (Add/Down/Flaky/Slow/Corrupting) and then only read, so they are safe
// for concurrent use by the read path without locking.
type Schedule struct {
	seed    uint64
	windows []Window
}

// NewSchedule creates an empty schedule whose probabilistic draws and
// corruption positions derive from seed.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: uint64(seed)}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return int64(s.seed) }

// Add appends a window and returns the schedule for chaining.
func (s *Schedule) Add(w Window) *Schedule {
	if w.State == Flaky && w.ErrProb <= 0 {
		w.ErrProb = 0.5
	}
	if w.State == Slow && w.SlowFactor <= 1 {
		w.SlowFactor = 4
	}
	if (w.State == WriteFailing || w.State == WriteTorn || w.State == SealFlaky) && w.ErrProb <= 0 {
		w.ErrProb = 0.5
	}
	if w.State == SealFlaky {
		w.Node = MetaNode
	}
	s.windows = append(s.windows, w)
	return s
}

// Down takes node offline for [from, until).
func (s *Schedule) Down(node int, from, until time.Duration) *Schedule {
	return s.Add(Window{Node: node, State: Down, From: from, Until: until})
}

// Flaky makes node fail reads with probability p during [from, until).
func (s *Schedule) Flaky(node int, from, until time.Duration, p float64) *Schedule {
	return s.Add(Window{Node: node, State: Flaky, From: from, Until: until, ErrProb: p})
}

// Slow multiplies node read latency by factor during [from, until).
func (s *Schedule) Slow(node int, from, until time.Duration, factor float64) *Schedule {
	return s.Add(Window{Node: node, State: Slow, From: from, Until: until, SlowFactor: factor})
}

// Corrupting makes node serve bit-flipped bytes during [from, until).
func (s *Schedule) Corrupting(node int, from, until time.Duration) *Schedule {
	return s.Add(Window{Node: node, State: Corrupting, From: from, Until: until})
}

// FailWrites makes node fail appends with probability p during
// [from, until), before any byte lands.
func (s *Schedule) FailWrites(node int, from, until time.Duration, p float64) *Schedule {
	return s.Add(Window{Node: node, State: WriteFailing, From: from, Until: until, ErrProb: p})
}

// TornWrites makes node tear append acknowledgements with probability p
// during [from, until): the bytes land, the ack is lost.
func (s *Schedule) TornWrites(node int, from, until time.Duration, p float64) *Schedule {
	return s.Add(Window{Node: node, State: WriteTorn, From: from, Until: until, ErrProb: p})
}

// SlowWrites puts node in a write brownout during [from, until).
func (s *Schedule) SlowWrites(node int, from, until time.Duration) *Schedule {
	return s.Add(Window{Node: node, State: WriteSlow, From: from, Until: until})
}

// FailSeals makes file seals fail with probability p during
// [from, until). Seal windows attach to MetaNode.
func (s *Schedule) FailSeals(from, until time.Duration, p float64) *Schedule {
	return s.Add(Window{Node: MetaNode, State: SealFlaky, From: from, Until: until, ErrProb: p})
}

// Windows returns the schedule's windows (for display; do not mutate).
func (s *Schedule) Windows() []Window {
	if s == nil {
		return nil
	}
	return s.windows
}

// NodeState returns node's state as the READ path sees it at virtual
// time now: write-shaped windows are skipped, so a node that only fails
// writes still serves reads normally. A nil schedule is always Healthy.
// The latest matching window wins.
func (s *Schedule) NodeState(node int, now time.Duration) (State, Window) {
	if s == nil {
		return Healthy, Window{}
	}
	for i := len(s.windows) - 1; i >= 0; i-- {
		w := s.windows[i]
		if w.Node == node && w.active(now) && !w.State.WriteShaped() {
			return w.State, w
		}
	}
	return Healthy, Window{Node: node}
}

// WriteState returns node's state as the WRITE path sees it at virtual
// time now: write-shaped windows plus Down (an offline node fails both
// directions); read-only fault states are invisible. A nil schedule is
// always Healthy. The latest matching window wins.
func (s *Schedule) WriteState(node int, now time.Duration) (State, Window) {
	if s == nil {
		return Healthy, Window{}
	}
	for i := len(s.windows) - 1; i >= 0; i-- {
		w := s.windows[i]
		if w.Node == node && w.active(now) && (w.State.WriteShaped() || w.State == Down) {
			return w.State, w
		}
	}
	return Healthy, Window{Node: node}
}

// SealFires makes the deterministic draw for one seal attempt of path at
// virtual time now: true when an active SealFlaky window fires. attempt
// must vary across retries of the same seal.
func (s *Schedule) SealFires(path string, now time.Duration, attempt int) bool {
	if s == nil {
		return false
	}
	for i := len(s.windows) - 1; i >= 0; i-- {
		w := s.windows[i]
		if w.State == SealFlaky && w.active(now) {
			return s.Fires(w.ErrProb, MetaNode, path, 0, attempt)
		}
	}
	return false
}

// fnv-1a over the draw identity, seeded. Keying draws by read identity
// (instead of consuming shared RNG state) keeps chaos runs independent
// of goroutine scheduling.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (s *Schedule) draw(node int, stream string, offset, salt int64) uint64 {
	h := uint64(fnvOffset64) ^ s.seed
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	mix(uint64(node))
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime64
	}
	mix(uint64(offset))
	mix(uint64(salt))
	return h
}

// Fires makes a deterministic pseudo-random draw that is true with
// probability p, keyed by the read's identity. attempt must vary across
// retries of the same read or a flaky node would fail it forever.
func (s *Schedule) Fires(p float64, node int, stream string, offset int64, attempt int) bool {
	if s == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := s.draw(node, stream, offset, int64(attempt))
	return float64(h>>11)/float64(1<<53) < p
}

// Jitter derives a deterministic backoff jitter in [0, max), keyed by
// the read's identity, so retry timing is reproducible yet decorrelated
// across concurrent readers. A nil schedule jitters by zero.
func (s *Schedule) Jitter(max time.Duration, node int, stream string, offset int64, attempt int) time.Duration {
	if s == nil || max <= 0 {
		return 0
	}
	h := s.draw(node, stream, offset, int64(attempt)^(1<<40))
	return time.Duration(h % uint64(max))
}

// CorruptBit picks the deterministic bit to flip in an n-byte payload
// served by a corrupting node: a byte position in [0, n) and a one-bit
// mask. Deterministic per (node, stream, offset), so re-reading the same
// bytes from the same bad replica yields the same corruption — exactly
// how a rotted sector behaves.
func (s *Schedule) CorruptBit(node int, stream string, offset, n int64) (pos int64, mask byte) {
	if n <= 0 {
		return 0, 1
	}
	h := s.draw(node, stream, offset, -1)
	return int64(h % uint64(n)), 1 << ((h >> 56) & 7)
}
