package faults

import (
	"testing"
	"time"
)

func TestNodeStateWindows(t *testing.T) {
	s := NewSchedule(1).
		Down(2, 10*time.Millisecond, 20*time.Millisecond).
		Flaky(2, 15*time.Millisecond, 0, 0.25) // later window wins overlap

	cases := []struct {
		now  time.Duration
		want State
	}{
		{0, Healthy},
		{10 * time.Millisecond, Down},
		{15 * time.Millisecond, Flaky}, // latest-added wins
		{19 * time.Millisecond, Flaky},
		{25 * time.Millisecond, Flaky}, // Until<=From means forever
	}
	for _, c := range cases {
		if st, _ := s.NodeState(2, c.now); st != c.want {
			t.Errorf("NodeState(2, %v) = %v, want %v", c.now, st, c.want)
		}
	}
	if st, _ := s.NodeState(3, 15*time.Millisecond); st != Healthy {
		t.Errorf("unscheduled node not healthy: %v", st)
	}

	var nilSched *Schedule
	if st, _ := nilSched.NodeState(0, 0); st != Healthy {
		t.Errorf("nil schedule not healthy: %v", st)
	}
}

func TestAddDefaults(t *testing.T) {
	s := NewSchedule(1).
		Add(Window{Node: 0, State: Flaky}).
		Add(Window{Node: 1, State: Slow})
	ws := s.Windows()
	if ws[0].ErrProb != 0.5 {
		t.Errorf("Flaky default ErrProb = %v, want 0.5", ws[0].ErrProb)
	}
	if ws[1].SlowFactor != 4 {
		t.Errorf("Slow default SlowFactor = %v, want 4", ws[1].SlowFactor)
	}
}

func TestFiresDeterministicAndCalibrated(t *testing.T) {
	s := NewSchedule(42)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		a := s.Fires(0.3, 1, "f#0", int64(i), 0)
		b := s.Fires(0.3, 1, "f#0", int64(i), 0)
		if a != b {
			t.Fatal("same draw identity produced different outcomes")
		}
		if a {
			hits++
		}
	}
	// Seeded hash, so the rate is fixed; just require it is in the right
	// neighbourhood of p=0.3.
	if hits < n/4 || hits > 2*n/5 {
		t.Errorf("Fires(0.3) hit %d/%d draws", hits, n)
	}
	if s.Fires(0, 1, "f#0", 0, 0) {
		t.Error("p=0 fired")
	}
	if !s.Fires(1, 1, "f#0", 0, 0) {
		t.Error("p=1 did not fire")
	}
	var nilSched *Schedule
	if nilSched.Fires(1, 1, "f#0", 0, 0) {
		t.Error("nil schedule fired")
	}
}

func TestFiresVariesByAttempt(t *testing.T) {
	// A flaky node must not fail the same read forever: the attempt salt
	// has to change the draw.
	s := NewSchedule(7)
	for off := int64(0); off < 64; off++ {
		first := s.Fires(0.5, 0, "f#0", off, 0)
		varied := false
		for attempt := 1; attempt < 16; attempt++ {
			if s.Fires(0.5, 0, "f#0", off, attempt) != first {
				varied = true
				break
			}
		}
		if !varied {
			t.Fatalf("offset %d: 16 attempts all drew %v", off, first)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	s := NewSchedule(13)
	max := 250 * time.Microsecond
	for i := 0; i < 1000; i++ {
		j := s.Jitter(max, 2, "f#1", int64(i), 1)
		if j < 0 || j >= max {
			t.Fatalf("jitter %v outside [0, %v)", j, max)
		}
	}
	var nilSched *Schedule
	if nilSched.Jitter(max, 0, "", 0, 0) != 0 {
		t.Error("nil schedule jittered")
	}
}

func TestCorruptBitStable(t *testing.T) {
	s := NewSchedule(99)
	pos, mask := s.CorruptBit(3, "f#0", 4096, 1<<20)
	if pos < 0 || pos >= 1<<20 {
		t.Fatalf("corrupt position %d outside payload", pos)
	}
	if mask == 0 || mask&(mask-1) != 0 {
		t.Fatalf("corrupt mask %08b is not a single bit", mask)
	}
	p2, m2 := s.CorruptBit(3, "f#0", 4096, 1<<20)
	if p2 != pos || m2 != mask {
		t.Fatal("corruption not stable for the same (node, stream, offset)")
	}
	if p3, _ := s.CorruptBit(4, "f#0", 4096, 1<<20); p3 == pos {
		// Different node may collide by chance on short payloads, but a
		// 1 MiB payload makes collision vanishingly unlikely at any seed.
		t.Fatal("different node drew the identical corrupt position")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		Healthy: "healthy", Down: "down", Flaky: "flaky",
		Slow: "slow", Corrupting: "corrupting", State(99): "unknown",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), name)
		}
	}
}
