package tectonic

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dsi/internal/tectonic/faults"
)

// faultFixture builds a cluster holding one sealed file and returns the
// replica set of its first chunk, so tests can aim fault windows at the
// nodes that actually hold the data.
func faultFixture(t *testing.T, opts Options) (*Cluster, []byte, []int) {
	t.Helper()
	if opts.Nodes == 0 {
		opts.Nodes = 6
	}
	if opts.Replication == 0 {
		opts.Replication = 3
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = 1 << 16
	}
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*opts.ChunkSize/2) // spans two chunks
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", data); err != nil {
		t.Fatal(err)
	}
	if err := c.Seal("f"); err != nil {
		t.Fatal(err)
	}
	f, err := c.lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	return c, data, append([]int(nil), f.replicas[0]...)
}

func TestFaultDownFailsOver(t *testing.T) {
	c, data, reps := faultFixture(t, Options{})
	c.SetFaultSchedule(faults.NewSchedule(1).Down(reps[0], 0, 0))

	got, _, trace, err := c.ReadAtTraced("f", 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong bytes")
	}
	for _, sv := range trace.Served {
		if sv.Node == reps[0] {
			t.Fatalf("chunk %d served by down node %d", sv.Chunk, sv.Node)
		}
	}
	// The primary is ranked last, so the healthy replica serves without
	// burning a retry; the failover must still be accounted.
	if trace.Failovers == 0 {
		t.Fatal("no failover recorded despite down primary")
	}
	if fc := c.FaultCounters(); fc.Failovers == 0 {
		t.Fatalf("cluster counters missed the failover: %+v", fc)
	}
}

func TestFaultFlakyRetriesThenSucceeds(t *testing.T) {
	// Every node flaky at p=0.5: ranking cannot route around the fault,
	// so some first attempts fail and the backoff/retry path must carry
	// the read. A generous attempt budget makes full exhaustion
	// (0.5^12 per chunk) effectively impossible at any seed.
	c, data, _ := faultFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 12}})
	sched := faults.NewSchedule(7)
	for _, n := range c.Nodes() {
		sched.Flaky(n.ID, 0, 0, 0.5)
	}
	c.SetFaultSchedule(sched)

	var trace ReadTrace
	step := c.ChunkSize() / 4
	for off := int64(0); off < int64(len(data)); off += step {
		n := step
		if off+n > int64(len(data)) {
			n = int64(len(data)) - off
		}
		got, _, tr, err := c.ReadAtTraced("f", off, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off:off+n]) {
			t.Fatalf("read [%d,%d) returned wrong bytes", off, off+n)
		}
		trace.merge(tr)
	}
	if trace.Retries == 0 {
		t.Fatal("no retries recorded under a fully flaky cluster")
	}
	if trace.Backoff == 0 {
		t.Fatal("retries recorded but no virtual backoff paid")
	}
	if fc := c.FaultCounters(); fc.Retries != trace.Retries {
		t.Fatalf("cluster retries %d, trace retries %d", fc.Retries, trace.Retries)
	}
}

func TestFaultSlowTriggersHedge(t *testing.T) {
	// Primary replica brutally slow, the other replicas mildly slow: all
	// rank equal (slow), so placement order keeps the straggler first,
	// its latency blows through the hedge threshold, and the hedged read
	// against the next replica wins.
	c, data, reps := faultFixture(t, Options{})
	sched := faults.NewSchedule(3).Slow(reps[0], 0, 0, 64)
	for _, n := range reps[1:] {
		sched.Slow(n, 0, 0, 1.01)
	}
	c.SetFaultSchedule(sched)

	got, _, trace, err := c.ReadAtTraced("f", 0, c.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:c.ChunkSize()]) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if trace.Hedges == 0 {
		t.Fatal("no hedge fired against a 64x straggler")
	}
	if trace.HedgeWins == 0 {
		t.Fatal("hedge fired but the much faster replica did not win")
	}
	fc := c.FaultCounters()
	if fc.Hedges != trace.Hedges || fc.HedgeWins != trace.HedgeWins {
		t.Fatalf("cluster counters %+v disagree with trace %+v", fc, trace)
	}
}

func TestFaultAllDownExhaustsReplicas(t *testing.T) {
	c, data, _ := faultFixture(t, Options{})
	sched := faults.NewSchedule(5)
	for _, n := range c.Nodes() {
		sched.Down(n.ID, 0, 0)
	}
	c.SetFaultSchedule(sched)

	_, _, _, err := c.ReadAtTraced("f", 0, int64(len(data)))
	if err == nil {
		t.Fatal("read succeeded with every node down")
	}
	if !errors.Is(err, ErrAllReplicas) {
		t.Fatalf("error %v does not wrap ErrAllReplicas", err)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("error %v does not carry the last per-node cause", err)
	}
	if !IsRetryable(err) {
		t.Fatal("replica exhaustion must stay retryable (nodes recover)")
	}
}

func TestQuarantineDemotesReplica(t *testing.T) {
	c, data, reps := faultFixture(t, Options{})
	if !c.Quarantine("f", 0, reps[0]) {
		t.Fatal("first quarantine not reported as new")
	}
	if c.Quarantine("f", 0, reps[0]) {
		t.Fatal("second quarantine of the same replica reported as new")
	}
	if !c.Quarantined("f", 0, reps[0]) {
		t.Fatal("replica not recorded as quarantined")
	}

	got, _, trace, err := c.ReadAtTraced("f", 0, c.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:c.ChunkSize()]) {
		t.Fatal("read after quarantine returned wrong bytes")
	}
	for _, sv := range trace.Served {
		if sv.Chunk == 0 && sv.Node == reps[0] {
			t.Fatalf("chunk 0 still served by quarantined node %d", sv.Node)
		}
	}
	if fc := c.FaultCounters(); fc.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", fc.Quarantines)
	}
}

func TestFaultFreeReadsStayClean(t *testing.T) {
	c, data, reps := faultFixture(t, Options{})
	got, _, trace, err := c.ReadAtTraced("f", 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fault-free read returned wrong bytes")
	}
	if trace.Retries != 0 || trace.Failovers != 0 || trace.Hedges != 0 || trace.Backoff != 0 {
		t.Fatalf("fault-free read paid recovery work: %+v", trace)
	}
	if len(trace.Served) == 0 || trace.Served[0].Node != reps[0] {
		t.Fatalf("fault-free read did not use the primary replica: %+v", trace.Served)
	}
	if fc := c.FaultCounters(); fc != (FaultCounters{}) {
		t.Fatalf("fault-free counters nonzero: %+v", fc)
	}
}

func TestFaultWindowExpiry(t *testing.T) {
	// A down window ends; once the virtual clock passes it, the primary
	// serves again.
	c, data, reps := faultFixture(t, Options{})
	c.SetFaultSchedule(faults.NewSchedule(9).Down(reps[0], 0, time.Millisecond))

	c.Clock().AdvanceTo(2 * time.Millisecond)
	got, _, trace, err := c.ReadAtTraced("f", 0, c.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:c.ChunkSize()]) {
		t.Fatal("post-window read returned wrong bytes")
	}
	if len(trace.Served) == 0 || trace.Served[0].Node != reps[0] {
		t.Fatalf("primary not restored after its down window: %+v", trace.Served)
	}
}

func TestBorrowNeverAliasesCorruptingNode(t *testing.T) {
	// A corrupting node must never lend out its chunk buffer: the flip
	// happens in a private copy, so the stored bytes stay intact for the
	// replicas that will serve the retry.
	c, data, reps := faultFixture(t, Options{})
	sched := faults.NewSchedule(11)
	for _, n := range reps {
		sched.Corrupting(n, 0, 0)
	}
	c.SetFaultSchedule(sched)

	got, borrowed, _, _, err := c.ReadAtBorrowTraced("f", 0, c.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if borrowed {
		t.Fatal("corrupting node lent out its chunk buffer")
	}
	if bytes.Equal(got, data[:c.ChunkSize()]) {
		t.Fatal("corrupting node served clean bytes")
	}
	// Exactly one bit differs.
	diff := 0
	for i := range got {
		b := got[i] ^ data[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}

	// The stored replica is unharmed: healthy reads return clean bytes.
	c.SetFaultSchedule(nil)
	clean, _, err := c.ReadAt("f", 0, c.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, data[:c.ChunkSize()]) {
		t.Fatal("stored chunk was mutated by the corrupting serve")
	}
}
