package tectonic

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dsi/internal/tectonic/faults"
)

// Typed storage errors. The retry layers above (dwrf stripe fetch, dpp
// split requeue, etl partition re-produce) classify on these with
// errors.Is instead of string matching. The canonical sentinels live in
// the faults package so logdevice shares the same taxonomy; these
// aliases keep tectonic's historical names working.
var (
	// ErrNodeDown marks an I/O addressed to a node that is offline.
	ErrNodeDown = faults.ErrNodeDown
	// ErrNodeIO marks a transient per-I/O failure on a flaky node.
	ErrNodeIO = faults.ErrNodeIO
	// ErrCorrupt marks data that failed checksum verification. The
	// cluster itself never detects corruption (it is silent by nature);
	// dwrf wraps this sentinel when StripeMeta.ContentHash disagrees.
	ErrCorrupt = faults.ErrCorrupt
	// ErrAllReplicas marks a chunk I/O that exhausted its attempt
	// budget across every replica.
	ErrAllReplicas = faults.ErrAllReplicas
	// ErrTornAck marks an append whose bytes landed but whose ack was
	// lost; a tokened retry deduplicates against the landed bytes.
	ErrTornAck = faults.ErrTornAck
	// ErrOutOfRange marks a read outside the file's current extent.
	ErrOutOfRange = errors.New("tectonic: read out of range")
)

// IsRetryable reports whether a storage error is worth retrying — on
// another replica, after a backoff, or by requeueing the split to a
// different worker. See faults.IsRetryable for the taxonomy.
func IsRetryable(err error) bool { return faults.IsRetryable(err) }

// RetryPolicy governs the self-healing read path: how many replica
// attempts a chunk I/O gets, the capped exponential backoff (with
// seeded jitter) between them, and when a hedged second read fires
// against another replica. Backoff and hedge delays are virtual-clock
// time folded into the read's completion time — nothing sleeps.
type RetryPolicy struct {
	// MaxAttempts bounds chunk I/O attempts across replicas; defaults
	// to 2 x Replication.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; doubles per attempt up
	// to MaxBackoff, plus jitter in [0, step/2). Defaults 500µs / 16ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeMultiple fires a hedged read when a read's latency exceeds
	// HedgeMultiple x the EWMA of recent read latencies (default 3).
	HedgeMultiple float64
	// HedgeMin floors the hedge threshold so cold-start EWMA noise
	// can't hedge every read (default 2ms).
	HedgeMin time.Duration
	// DisableHedge turns hedged reads off.
	DisableHedge bool
}

func (p *RetryPolicy) fill(replication int) {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 2 * replication
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 500 * time.Microsecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 16 * time.Millisecond
	}
	if p.HedgeMultiple == 0 {
		p.HedgeMultiple = 3
	}
	if p.HedgeMin == 0 {
		p.HedgeMin = 2 * time.Millisecond
	}
}

// ReplicaServe records which node served one chunk-level I/O — the
// provenance a checksum-verifying reader needs to quarantine the right
// replica when the bytes turn out bad.
type ReplicaServe struct {
	Chunk int64
	Node  int
}

// ReadTrace accounts the recovery work behind one read: retries beyond
// the first attempt, failovers away from the primary replica, hedged
// reads fired and won, virtual backoff paid, and the replica that
// served each chunk.
type ReadTrace struct {
	Retries   int64
	Failovers int64
	Hedges    int64
	HedgeWins int64
	Backoff   time.Duration
	Served    []ReplicaServe
}

func (t *ReadTrace) merge(o ReadTrace) {
	t.Retries += o.Retries
	t.Failovers += o.Failovers
	t.Hedges += o.Hedges
	t.HedgeWins += o.HedgeWins
	t.Backoff += o.Backoff
	t.Served = append(t.Served, o.Served...)
}

// FaultCounters is a snapshot of the cluster's cumulative recovery
// accounting, read side and write side.
type FaultCounters struct {
	Retries       int64
	Failovers     int64
	Hedges        int64
	HedgeWins     int64
	CorruptServes int64
	Quarantines   int64

	// Write-side recovery accounting.
	AppendRetries   int64 // retried append attempts beyond the first
	AppendDedups    int64 // retries that found their token fully landed (torn ack)
	TornAcks        int64 // appends that landed but lost their ack
	TornRepairs     int64 // retries that resumed a partially landed token
	SlowWriteServes int64 // fragment writes served by a browned-out node
	SealRetries     int64 // failed seal attempts absorbed by internal retry
	PlacementAvoids int64 // chunk placements steered away from unhealthy/condemned nodes
}

type replicaKey struct {
	path  string
	chunk int64
	node  int
}

// SetFaultSchedule installs (or, with nil, removes) the fault schedule
// consulted by every subsequent read. With no schedule and no
// quarantined replicas the read path takes the exact fault-free fast
// path: primary replica, no ranking, no hedging.
func (c *Cluster) SetFaultSchedule(s *faults.Schedule) {
	c.fmu.Lock()
	c.schedule = s
	c.fmu.Unlock()
}

// FaultSchedule returns the installed schedule (nil when fault-free).
func (c *Cluster) FaultSchedule() *faults.Schedule {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.schedule
}

// Quarantine marks one replica of one chunk as untrusted — subsequent
// reads of that chunk rank the node last and only use it when every
// replica is quarantined. Callers that verify checksums (dwrf) invoke
// this when bytes from a node disagree with the recorded hash. Reports
// whether the replica was newly quarantined.
func (c *Cluster) Quarantine(path string, chunk int64, node int) bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if c.quarantined == nil {
		c.quarantined = make(map[replicaKey]bool)
	}
	k := replicaKey{path: path, chunk: chunk, node: node}
	if c.quarantined[k] {
		return false
	}
	c.quarantined[k] = true
	if c.condemned == nil {
		c.condemned = make(map[int]int64)
	}
	c.condemned[node]++
	c.counters.Quarantines++
	return true
}

// Quarantined reports whether the (path, chunk, node) replica is
// quarantined.
func (c *Cluster) Quarantined(path string, chunk int64, node int) bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.quarantined[replicaKey{path: path, chunk: chunk, node: node}]
}

// ResetFaultPlane clears the quarantined-replica set, the per-node
// condemnation tallies, the recovery counters, and the hedging latency
// EWMA, leaving the installed fault schedule in place. Chaos experiments
// use it to take fault-free and degraded measurements of the same
// cluster from a clean slate.
func (c *Cluster) ResetFaultPlane() {
	c.fmu.Lock()
	c.quarantined = nil
	c.condemned = nil
	c.counters = FaultCounters{}
	c.ewmaLatNs = 0
	c.fmu.Unlock()
}

// FaultCounters snapshots the cumulative recovery accounting.
func (c *Cluster) FaultCounters() FaultCounters {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.counters
}

// faultsActive reports whether the slow path (ranking, schedule checks,
// hedging) must run.
func (c *Cluster) faultsActive() bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.schedule != nil || len(c.quarantined) > 0
}

func (c *Cluster) hedgeThreshold() time.Duration {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	thr := time.Duration(c.opts.Retry.HedgeMultiple * c.ewmaLatNs)
	if thr < c.opts.Retry.HedgeMin {
		thr = c.opts.Retry.HedgeMin
	}
	return thr
}

func (c *Cluster) observeLatency(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	c.fmu.Lock()
	if c.ewmaLatNs == 0 {
		c.ewmaLatNs = float64(lat)
	} else {
		c.ewmaLatNs = 0.8*c.ewmaLatNs + 0.2*float64(lat)
	}
	c.fmu.Unlock()
}

// rankReplicas orders a chunk's replicas healthiest-first: healthy,
// then slow, then flaky, with quarantined replicas after everything
// except down nodes. Corrupting nodes rank as healthy on purpose —
// corruption is silent, and only a checksum-driven Quarantine may
// demote them. Ties preserve placement order so the fault-free ranking
// equals the legacy primary-first order.
func (c *Cluster) rankReplicas(path string, chunk int64, replicas []int, now time.Duration, sched *faults.Schedule) []int {
	type cand struct {
		node, idx, score int
	}
	cands := make([]cand, len(replicas))
	for i, n := range replicas {
		score := 0
		switch st, _ := sched.NodeState(n, now); st {
		case faults.Slow:
			score = 1
		case faults.Flaky:
			score = 2
		case faults.Down:
			score = 8
		}
		if score < 8 && c.Quarantined(path, chunk, n) {
			score += 4
		}
		cands[i] = cand{node: n, idx: i, score: score}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	out := make([]int, len(cands))
	for i, cd := range cands {
		out[i] = cd.node
	}
	return out
}

// serveChunk reads [within, within+n) of one chunk from one node,
// applying the node's fault state: corrupting nodes return a copy with
// a deterministic bit flipped, slow nodes pay a multiplied service
// latency. Returns the bytes, whether they alias the chunk buffer, and
// the absolute virtual completion time.
func (c *Cluster) serveChunk(nodeID int, stream, path string, chunkIdx, within, n int64, st faults.State, win faults.Window, sched *faults.Schedule, borrow bool) ([]byte, bool, time.Duration) {
	node := c.nodes[nodeID]
	key := chunkKey{path: path, index: chunkIdx}
	node.mu.Lock()
	buf := node.chunks[key]
	var data []byte
	borrowed := false
	if borrow && st != faults.Corrupting {
		data = buf[within : within+n : within+n]
		borrowed = true
	} else {
		data = append(make([]byte, 0, n), buf[within:within+n]...)
	}
	node.mu.Unlock()

	if st == faults.Corrupting {
		pos, mask := sched.CorruptBit(nodeID, stream, within, n)
		data[pos] ^= mask
		c.fmu.Lock()
		c.counters.CorruptServes++
		c.fmu.Unlock()
	}

	done := node.Disk.Read(stream, within, n)
	if st == faults.Slow && win.SlowFactor > 1 {
		done += time.Duration(float64(node.Disk.Spec.ServiceTime(n)) * (win.SlowFactor - 1))
	}
	c.IOSizes.Observe(float64(n))
	c.ReadOps.Inc()
	c.ReadBytes.Add(n)
	return data, borrowed, done
}

// readChunkFaulty is the recovering chunk read: replicas in
// health-ranked order, capped exponential backoff with seeded jitter
// between attempts, and a hedged second read when the chosen replica's
// latency exceeds the adaptive threshold. Backoff and hedge delay are
// virtual time, folded into the returned completion time.
func (c *Cluster) readChunkFaulty(path string, replicas []int, chunkIdx, within, n int64, borrow bool) ([]byte, bool, time.Duration, ReadTrace, error) {
	sched := c.FaultSchedule()
	now := c.opts.Clock.Now()
	order := c.rankReplicas(path, chunkIdx, replicas, now, sched)
	// Quarantined replicas leave the rotation entirely while any clean
	// replica remains: a checksum-condemned node must not get to
	// "succeed" with its rotted bytes just because a clean replica threw
	// a transient error on one attempt. Only when every replica is
	// quarantined do the condemned ones come back as a last resort.
	clean := order[:0:0]
	for _, n := range order {
		if !c.Quarantined(path, chunkIdx, n) {
			clean = append(clean, n)
		}
	}
	if len(clean) > 0 {
		order = clean
	}
	pol := c.opts.Retry
	stream := fmt.Sprintf("%s#%d", path, chunkIdx)

	var trace ReadTrace
	var backoff time.Duration
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		nodeID := order[attempt%len(order)]
		if attempt > 0 {
			trace.Retries++
			c.fmu.Lock()
			c.counters.Retries++
			c.fmu.Unlock()
			step := pol.BaseBackoff << (attempt - 1)
			if step > pol.MaxBackoff || step <= 0 {
				step = pol.MaxBackoff
			}
			backoff += step + sched.Jitter(step/2, nodeID, stream, within, attempt)
		}
		st, win := sched.NodeState(nodeID, now)
		if st == faults.Down {
			lastErr = fmt.Errorf("%w: node %d serving %s chunk %d", ErrNodeDown, nodeID, path, chunkIdx)
			continue
		}
		if st == faults.Flaky && sched.Fires(win.ErrProb, nodeID, stream, within, attempt) {
			lastErr = fmt.Errorf("%w: node %d serving %s chunk %d (attempt %d)", ErrNodeIO, nodeID, path, chunkIdx, attempt)
			continue
		}
		if nodeID != replicas[0] {
			trace.Failovers++
			c.fmu.Lock()
			c.counters.Failovers++
			c.fmu.Unlock()
		}
		data, borrowed, done := c.serveChunk(nodeID, stream, path, chunkIdx, within, n, st, win, sched, borrow)
		served := nodeID

		// Hedge: if the chosen replica is predicted to straggle past the
		// adaptive threshold, fire a second read at the next-ranked
		// healthy replica after the threshold delay; first completion
		// wins, the loser's device time stays accounted.
		lat := done - now
		if thr := c.hedgeThreshold(); !pol.DisableHedge && sched != nil && lat > thr {
			if alt, ok := altReplica(order, nodeID, now, sched); ok {
				trace.Hedges++
				altSt, altWin := sched.NodeState(alt, now)
				data2, borrowed2, done2 := c.serveChunk(alt, stream, path, chunkIdx, within, n, altSt, altWin, sched, borrow)
				hedgeDone := done2 + thr
				won := hedgeDone < done
				c.fmu.Lock()
				c.counters.Hedges++
				if won {
					c.counters.HedgeWins++
				}
				c.fmu.Unlock()
				if won {
					trace.HedgeWins++
					data, borrowed, done, served = data2, borrowed2, hedgeDone, alt
				}
			}
		}

		c.observeLatency(done - now)
		trace.Backoff = backoff
		trace.Served = append(trace.Served, ReplicaServe{Chunk: chunkIdx, Node: served})
		return data, borrowed, done + backoff, trace, nil
	}
	trace.Backoff = backoff
	err := fmt.Errorf("%w: %s chunk %d gave up after %d attempts: %w",
		ErrAllReplicas, path, chunkIdx, pol.MaxAttempts, lastErr)
	return nil, false, 0, trace, err
}

// altReplica picks the hedge target: the first ranked replica other
// than primary that is not down.
func altReplica(order []int, primary int, now time.Duration, sched *faults.Schedule) (int, bool) {
	for _, n := range order {
		if n == primary {
			continue
		}
		if st, _ := sched.NodeState(n, now); st != faults.Down {
			return n, true
		}
	}
	return 0, false
}

// ReadAtTraced is ReadAt returning, additionally, the recovery trace:
// which replica served each chunk, and how much retrying, failover, and
// hedging the read needed.
func (c *Cluster) ReadAtTraced(path string, offset, length int64) ([]byte, time.Duration, ReadTrace, error) {
	var trace ReadTrace
	if offset < 0 || length < 0 {
		return nil, 0, trace, fmt.Errorf("%w: negative read parameters [%d,%d) of %s", ErrOutOfRange, offset, offset+length, path)
	}
	f, err := c.lookup(path)
	if err != nil {
		return nil, 0, trace, err
	}
	f.mu.Lock()
	size := f.size
	replicas := f.replicas
	f.mu.Unlock()

	if offset+length > size {
		return nil, 0, trace, fmt.Errorf("%w: read [%d,%d) beyond size %d of %s", ErrOutOfRange, offset, offset+length, size, path)
	}

	faulty := c.faultsActive()
	out := make([]byte, 0, length)
	var done time.Duration
	cs := c.opts.ChunkSize
	for length > 0 {
		chunkIdx := offset / cs
		within := offset % cs
		n := cs - within
		if length < n {
			n = length
		}
		if faulty {
			data, _, t, tr, err := c.readChunkFaulty(path, replicas[chunkIdx], chunkIdx, within, n, false)
			trace.merge(tr)
			if err != nil {
				return nil, 0, trace, err
			}
			out = append(out, data...)
			if t > done {
				done = t
			}
		} else {
			nodeID := replicas[chunkIdx][0]
			node := c.nodes[nodeID]
			key := chunkKey{path: path, index: chunkIdx}
			node.mu.Lock()
			buf := node.chunks[key]
			out = append(out, buf[within:within+n]...)
			node.mu.Unlock()

			stream := fmt.Sprintf("%s#%d", path, chunkIdx)
			if t := node.Disk.Read(stream, within, n); t > done {
				done = t
			}
			c.IOSizes.Observe(float64(n))
			c.ReadOps.Inc()
			c.ReadBytes.Add(n)
			trace.Served = append(trace.Served, ReplicaServe{Chunk: chunkIdx, Node: nodeID})
		}
		offset += n
		length -= n
	}
	return out, done, trace, nil
}

// ReadAtBorrowTraced is ReadAtBorrow with the recovery trace.
func (c *Cluster) ReadAtBorrowTraced(path string, offset, length int64) ([]byte, bool, time.Duration, ReadTrace, error) {
	cs := c.opts.ChunkSize
	if length <= 0 || offset < 0 || offset/cs != (offset+length-1)/cs {
		out, t, trace, err := c.ReadAtTraced(path, offset, length)
		return out, false, t, trace, err
	}
	var trace ReadTrace
	f, err := c.lookup(path)
	if err != nil {
		return nil, false, 0, trace, err
	}
	f.mu.Lock()
	size := f.size
	replicas := f.replicas
	f.mu.Unlock()

	if offset+length > size {
		return nil, false, 0, trace, fmt.Errorf("%w: read [%d,%d) beyond size %d of %s", ErrOutOfRange, offset, offset+length, size, path)
	}

	chunkIdx := offset / cs
	within := offset % cs
	if c.faultsActive() {
		out, borrowed, t, tr, err := c.readChunkFaulty(path, replicas[chunkIdx], chunkIdx, within, length, true)
		trace.merge(tr)
		return out, borrowed, t, trace, err
	}
	nodeID := replicas[chunkIdx][0]
	node := c.nodes[nodeID]
	key := chunkKey{path: path, index: chunkIdx}
	node.mu.Lock()
	buf := node.chunks[key]
	out := buf[within : within+length : within+length]
	node.mu.Unlock()

	stream := fmt.Sprintf("%s#%d", path, chunkIdx)
	done := node.Disk.Read(stream, within, length)
	c.IOSizes.Observe(float64(length))
	c.ReadOps.Inc()
	c.ReadBytes.Add(length)
	trace.Served = append(trace.Served, ReplicaServe{Chunk: chunkIdx, Node: nodeID})
	return out, true, done, trace, nil
}
