// Package tectonic implements an append-only distributed filesystem in the
// style of Meta's Tectonic (§3.1.2 of the paper): files are split into
// fixed-size chunks, each chunk is replicated across storage nodes, and
// every read is accounted against the owning node's disk model so that
// IOPS, seek behaviour, and I/O-size distributions (Table 6) can be
// measured.
//
// Data is held in memory — the simulation substitutes for exabyte HDD
// fleets — but the read/write path is real: callers get back exactly the
// bytes they wrote, through the same chunked, replicated topology the
// paper describes.
package tectonic

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dsi/internal/clock"
	"dsi/internal/hw"
	"dsi/internal/metrics"
	"dsi/internal/tectonic/faults"
)

// DefaultChunkSize is Tectonic's chunk size; §7.5 notes filtering reduced
// I/O sizes "from almost 8 MB (Tectonic's chunk size)".
const DefaultChunkSize = 8 << 20

// ErrNotFound is returned for operations on unknown paths.
var ErrNotFound = errors.New("tectonic: file not found")

// ErrClosed is returned when appending to a sealed file.
var ErrClosed = errors.New("tectonic: file is sealed")

// Options configures a cluster.
type Options struct {
	// Nodes is the number of storage nodes. Must be >= Replication.
	Nodes int
	// Replication is the number of replicas per chunk. The paper uses
	// triplicate replication for durability (§7.1).
	Replication int
	// ChunkSize is the chunk size in bytes; defaults to DefaultChunkSize.
	ChunkSize int64
	// Disk is the device model for every node; defaults to hw.HDD.
	Disk hw.DiskSpec
	// Clock is the virtual clock for I/O accounting; defaults to a new
	// clock.
	Clock *clock.Clock
	// Faults is an optional seeded schedule of node fault windows; nil
	// means every node is healthy forever (and reads take the exact
	// legacy fast path). Can also be installed later with
	// SetFaultSchedule.
	Faults *faults.Schedule
	// Retry governs replica failover, backoff, and hedged reads when
	// faults are active; zero fields take defaults (see RetryPolicy).
	Retry RetryPolicy
}

func (o *Options) fill() {
	if o.Nodes == 0 {
		o.Nodes = 6
	}
	if o.Replication == 0 {
		o.Replication = 3
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Disk.Name == "" {
		o.Disk = hw.HDD
	}
	if o.Clock == nil {
		o.Clock = clock.New()
	}
	o.Retry.fill(o.Replication)
}

// StorageNode is one disk-backed node in the cluster.
type StorageNode struct {
	ID   int
	Disk *hw.Disk

	mu     sync.Mutex
	chunks map[chunkKey][]byte
}

type chunkKey struct {
	path  string
	index int64
}

// Cluster is a set of storage nodes holding replicated, chunked,
// append-only files.
type Cluster struct {
	opts  Options
	nodes []*StorageNode

	mu    sync.Mutex
	files map[string]*fileMeta

	// IOSizes records the size of every read I/O issued to any node,
	// the Table 6 measurement.
	IOSizes metrics.Histogram
	// ReadOps and ReadBytes aggregate the read load across nodes.
	ReadOps   metrics.Counter
	ReadBytes metrics.Counter

	// fmu guards the failure plane: the installed fault schedule, the
	// quarantined-replica set, per-node condemnation tallies, recovery
	// counters, and the latency EWMA feeding the hedged-read threshold.
	fmu         sync.Mutex
	schedule    *faults.Schedule
	quarantined map[replicaKey]bool
	condemned   map[int]int64
	counters    FaultCounters
	ewmaLatNs   float64
}

type fileMeta struct {
	mu     sync.Mutex
	size   int64
	sealed bool
	// replicas[i] lists the node IDs holding chunk i.
	replicas [][]int
	// tokens is the per-file idempotent-append ledger, populated only
	// while write faults are active: token -> how much of that token's
	// payload has durably landed. Cleared when the file seals.
	tokens map[string]*tokenState
}

// NewCluster creates a cluster with the given options.
func NewCluster(opts Options) (*Cluster, error) {
	opts.fill()
	if opts.Nodes < opts.Replication {
		return nil, fmt.Errorf("tectonic: %d nodes cannot hold %d replicas", opts.Nodes, opts.Replication)
	}
	c := &Cluster{opts: opts, files: make(map[string]*fileMeta), schedule: opts.Faults}
	for i := 0; i < opts.Nodes; i++ {
		c.nodes = append(c.nodes, &StorageNode{
			ID:     i,
			Disk:   hw.NewDisk(opts.Disk, opts.Clock),
			chunks: make(map[chunkKey][]byte),
		})
	}
	return c, nil
}

// Clock returns the cluster's virtual clock.
func (c *Cluster) Clock() *clock.Clock { return c.opts.Clock }

// ChunkSize returns the configured chunk size.
func (c *Cluster) ChunkSize() int64 { return c.opts.ChunkSize }

// Replication returns the configured replicas per chunk.
func (c *Cluster) Replication() int { return c.opts.Replication }

// Nodes returns the storage nodes (for inspection in experiments).
func (c *Cluster) Nodes() []*StorageNode { return c.nodes }

// rendezvousOrder ranks every node for a chunk by rendezvous hashing,
// best-first, so placement is stable across runs.
func (c *Cluster) rendezvousOrder(path string, chunk int64) []int {
	type scored struct {
		node  int
		score uint64
	}
	scoredNodes := make([]scored, len(c.nodes))
	for i := range c.nodes {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d/%d", path, chunk, i)
		scoredNodes[i] = scored{node: i, score: h.Sum64()}
	}
	sort.Slice(scoredNodes, func(i, j int) bool { return scoredNodes[i].score > scoredNodes[j].score })
	out := make([]int, len(scoredNodes))
	for i := range out {
		out[i] = scoredNodes[i].node
	}
	return out
}

// placement deterministically picks the replica nodes for a chunk: the
// rendezvous prefix.
func (c *Cluster) placement(path string, chunk int64) []int {
	return c.rendezvousOrder(path, chunk)[:c.opts.Replication]
}

// Create creates an empty append-only file. Creating an existing path is
// an error.
func (c *Cluster) Create(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[path]; ok {
		return fmt.Errorf("tectonic: file %q already exists", path)
	}
	c.files[path] = &fileMeta{}
	return nil
}

func (c *Cluster) lookup(path string) (*fileMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f, nil
}

// Append appends data to the file, writing through to all chunk
// replicas. When a fault schedule is active the write is evaluated
// against it (a single attempt, no token); callers that need retries
// with torn-ack deduplication use AppendToken.
func (c *Cluster) Append(path string, data []byte) error {
	f, err := c.lookup(path)
	if err != nil {
		return err
	}
	if c.writeFaultsActive() {
		var trace WriteTrace
		return c.appendAttempt(f, path, "", data, c.FaultSchedule(), 0, &trace)
	}
	return c.appendLegacy(f, path, data)
}

// appendLegacy is the fault-free append fast path: primary placement,
// no schedule checks, no token ledger.
func (c *Cluster) appendLegacy(f *fileMeta, path string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return fmt.Errorf("%w: %s", ErrClosed, path)
	}
	cs := c.opts.ChunkSize
	for len(data) > 0 {
		chunkIdx := f.size / cs
		within := f.size % cs
		n := cs - within
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		if chunkIdx == int64(len(f.replicas)) {
			f.replicas = append(f.replicas, c.placement(path, chunkIdx))
		}
		for _, nodeID := range f.replicas[chunkIdx] {
			node := c.nodes[nodeID]
			key := chunkKey{path: path, index: chunkIdx}
			node.mu.Lock()
			buf := node.chunks[key]
			if int64(len(buf)) != within {
				// Replicas advance in lockstep under f.mu; divergence is a bug.
				node.mu.Unlock()
				panic(fmt.Sprintf("tectonic: replica divergence at %s chunk %d: len %d want %d",
					path, chunkIdx, len(buf), within))
			}
			node.chunks[key] = append(buf, data[:n]...)
			node.mu.Unlock()
		}
		f.size += n
		data = data[n:]
	}
	return nil
}

// Seal marks the file immutable. Reads are allowed before sealing (the
// paper's files are append-only but readable while being written). When
// a SealFlaky window is active, seal attempts fail with a seeded
// probability and retry internally up to the attempt budget; an
// exhausted budget surfaces a retryable error with the file unsealed.
func (c *Cluster) Seal(path string) error {
	f, err := c.lookup(path)
	if err != nil {
		return err
	}
	if sched := c.FaultSchedule(); sched != nil {
		now := c.opts.Clock.Now()
		pol := c.opts.Retry
		sealed := false
		for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
			if !sched.SealFires(path, now, attempt) {
				sealed = true
				break
			}
			c.fmu.Lock()
			c.counters.SealRetries++
			c.fmu.Unlock()
		}
		if !sealed {
			return fmt.Errorf("%w: seal of %s gave up after %d attempts", ErrNodeIO, path, pol.MaxAttempts)
		}
	}
	f.mu.Lock()
	f.sealed = true
	f.tokens = nil
	f.mu.Unlock()
	return nil
}

// Size reports the file's current length.
func (c *Cluster) Size(path string) (int64, error) {
	f, err := c.lookup(path)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size, nil
}

// Exists reports whether the path exists.
func (c *Cluster) Exists(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.files[path]
	return ok
}

// List returns all paths with the given prefix, sorted.
func (c *Cluster) List(prefix string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for p := range c.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and reclaims its chunks on all replicas.
func (c *Cluster) Delete(path string) error {
	c.mu.Lock()
	f, ok := c.files[path]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(c.files, path)
	c.mu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	for idx, nodes := range f.replicas {
		for _, nodeID := range nodes {
			node := c.nodes[nodeID]
			node.mu.Lock()
			delete(node.chunks, chunkKey{path: path, index: int64(idx)})
			node.mu.Unlock()
		}
	}
	return nil
}

// ReadAt reads length bytes at offset from the file, routing each
// chunk-level I/O to the healthiest replica (the primary when the
// cluster is fault-free) and accounting device time. It returns the
// bytes and the simulated completion time of the slowest I/O involved.
// When a fault schedule is active, failed attempts fail over across
// replicas with capped jittered backoff and stragglers are hedged; see
// ReadAtTraced for the recovery accounting.
func (c *Cluster) ReadAt(path string, offset, length int64) ([]byte, time.Duration, error) {
	out, t, _, err := c.ReadAtTraced(path, offset, length)
	return out, t, err
}

// ReadAtBorrow is ReadAt returning, when the range lies within a single
// memory-resident chunk, a slice that ALIASES the chunk's buffer instead
// of a copy (borrowed=true). The caller must treat a borrowed slice as
// read-only and not hold it across a Delete of the file. Borrowing is
// safe against concurrent appends because chunks are append-only: new
// bytes land beyond the length observed at read time, and a growth
// reallocation leaves the old array intact. Ranges spanning chunk
// boundaries fall back to the copying path (borrowed=false). Device-time
// and I/O accounting are identical to ReadAt, so storage metrics don't
// depend on which path served the read.
func (c *Cluster) ReadAtBorrow(path string, offset, length int64) ([]byte, bool, time.Duration, error) {
	out, borrowed, t, _, err := c.ReadAtBorrowTraced(path, offset, length)
	return out, borrowed, t, err
}

// ReadAll reads the whole file.
func (c *Cluster) ReadAll(path string) ([]byte, time.Duration, error) {
	size, err := c.Size(path)
	if err != nil {
		return nil, 0, err
	}
	return c.ReadAt(path, 0, size)
}

// TotalStoredBytes reports the physical bytes stored across all replicas.
func (c *Cluster) TotalStoredBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, buf := range n.chunks {
			total += int64(len(buf))
		}
		n.mu.Unlock()
	}
	return total
}

// LogicalBytes reports the logical (pre-replication) bytes stored.
func (c *Cluster) LogicalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, f := range c.files {
		f.mu.Lock()
		total += f.size
		f.mu.Unlock()
	}
	return total
}

// AggregateDiskBusy reports the total device-busy time across nodes.
func (c *Cluster) AggregateDiskBusy() time.Duration {
	var total time.Duration
	for _, n := range c.nodes {
		total += n.Disk.BusyTotal()
	}
	return total
}

// ResetIOAccounting clears per-read metrics for a fresh measurement
// window (the stored data is untouched).
func (c *Cluster) ResetIOAccounting() {
	c.IOSizes = metrics.Histogram{}
	c.ReadOps = metrics.Counter{}
	c.ReadBytes = metrics.Counter{}
	for _, n := range c.nodes {
		n.Disk.ResetAccounting()
	}
}

// EffectiveReadThroughput reports logical read bandwidth in bytes/sec of
// simulated disk time: bytes served divided by aggregate device busy
// time. This is the "storage throughput" metric of Table 12.
func (c *Cluster) EffectiveReadThroughput() float64 {
	busy := c.AggregateDiskBusy()
	if busy == 0 {
		return 0
	}
	return float64(c.ReadBytes.Value()) / busy.Seconds()
}
