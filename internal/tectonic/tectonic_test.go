package tectonic

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"dsi/internal/hw"
)

func newTestCluster(t *testing.T, chunkSize int64) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Nodes: 5, Replication: 3, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateAppendRead(t *testing.T) {
	c := newTestCluster(t, 16)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello tectonic, this spans several chunks of sixteen bytes")
	if err := c.Append("f", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadAll = %q, want %q", got, data)
	}
}

func TestCreateDuplicate(t *testing.T) {
	c := newTestCluster(t, 16)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("f"); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestReadAtPartial(t *testing.T) {
	c := newTestCluster(t, 8)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadAt("f", 6, 6) // crosses the chunk boundary at 8
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "6789ab" {
		t.Fatalf("ReadAt = %q, want 6789ab", got)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	c := newTestCluster(t, 8)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadAt("f", 0, 10); err == nil {
		t.Fatal("read beyond EOF accepted")
	}
	if _, _, err := c.ReadAt("f", -1, 2); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestSealPreventsAppend(t *testing.T) {
	c := newTestCluster(t, 8)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Seal("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after seal = %v, want ErrClosed", err)
	}
}

func TestNotFound(t *testing.T) {
	c := newTestCluster(t, 8)
	if _, _, err := c.ReadAll("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAll missing = %v, want ErrNotFound", err)
	}
	if err := c.Append("missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Append missing = %v, want ErrNotFound", err)
	}
	if err := c.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
}

func TestReplicationFactorStored(t *testing.T) {
	c := newTestCluster(t, 1024)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	if err := c.Append("f", data); err != nil {
		t.Fatal(err)
	}
	if got := c.LogicalBytes(); got != 5000 {
		t.Fatalf("LogicalBytes = %d, want 5000", got)
	}
	if got := c.TotalStoredBytes(); got != 15000 {
		t.Fatalf("TotalStoredBytes = %d, want 15000 (3x replication)", got)
	}
}

func TestDeleteReclaims(t *testing.T) {
	c := newTestCluster(t, 1024)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalStoredBytes(); got != 0 {
		t.Fatalf("TotalStoredBytes after delete = %d, want 0", got)
	}
	if c.Exists("f") {
		t.Fatal("file still exists after delete")
	}
}

func TestList(t *testing.T) {
	c := newTestCluster(t, 8)
	for _, p := range []string{"tables/rm1/p0", "tables/rm1/p1", "tables/rm2/p0"} {
		if err := c.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	got := c.List("tables/rm1/")
	if len(got) != 2 || got[0] != "tables/rm1/p0" || got[1] != "tables/rm1/p1" {
		t.Fatalf("List = %v", got)
	}
	if got := c.List(""); len(got) != 3 {
		t.Fatalf("List(\"\") = %v, want 3 entries", got)
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	c := newTestCluster(t, 8)
	p1 := c.placement("file-a", 0)
	p2 := c.placement("file-a", 0)
	if fmt.Sprint(p1) != fmt.Sprint(p2) {
		t.Fatalf("placement not deterministic: %v vs %v", p1, p2)
	}
	seen := map[int]bool{}
	for _, n := range p1 {
		if seen[n] {
			t.Fatalf("placement reuses node %d: %v", n, p1)
		}
		seen[n] = true
	}
	// Different chunks should (usually) land on different primaries;
	// check that across many chunks more than one node serves as primary.
	primaries := map[int]bool{}
	for i := int64(0); i < 20; i++ {
		primaries[c.placement("file-a", i)[0]] = true
	}
	if len(primaries) < 2 {
		t.Fatal("all chunks placed on one primary")
	}
}

func TestIOAccounting(t *testing.T) {
	c := newTestCluster(t, 1024)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("f", make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadAt("f", 0, 3000); err != nil {
		t.Fatal(err)
	}
	// 3000 bytes over 1024-byte chunks = 3 I/Os.
	if got := c.ReadOps.Value(); got != 3 {
		t.Fatalf("ReadOps = %d, want 3", got)
	}
	if got := c.ReadBytes.Value(); got != 3000 {
		t.Fatalf("ReadBytes = %d, want 3000", got)
	}
	if got := c.IOSizes.Count(); got != 3 {
		t.Fatalf("IOSizes count = %d, want 3", got)
	}
	if c.AggregateDiskBusy() <= 0 {
		t.Fatal("no disk busy time accounted")
	}
	if c.EffectiveReadThroughput() <= 0 {
		t.Fatal("no effective throughput")
	}
	c.ResetIOAccounting()
	if c.ReadOps.Value() != 0 || c.IOSizes.Count() != 0 || c.AggregateDiskBusy() != 0 {
		t.Fatal("ResetIOAccounting did not clear")
	}
}

func TestSmallReadsHurtThroughput(t *testing.T) {
	// The Table 12 effect: the same bytes served via small scattered I/Os
	// yield far lower effective storage throughput than chunk-sized reads.
	big, err := NewCluster(Options{Nodes: 3, Replication: 1, ChunkSize: 1 << 20, Disk: hw.HDD})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4<<20)
	if err := big.Append("f", data); err != nil {
		t.Fatal(err)
	}

	// Large reads: whole file in chunk-size I/Os.
	if _, _, err := big.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	largeTput := big.EffectiveReadThroughput()

	big.ResetIOAccounting()
	// Small reads: 20 KB every 128 KB (non-contiguous => seeks).
	for off := int64(0); off+20480 <= 4<<20; off += 128 << 10 {
		if _, _, err := big.ReadAt("f", off, 20480); err != nil {
			t.Fatal(err)
		}
	}
	smallTput := big.EffectiveReadThroughput()
	if smallTput*5 > largeTput {
		t.Fatalf("small-read throughput %.0f should be <20%% of large-read %.0f", smallTput, largeTput)
	}
}

func TestInsufficientNodes(t *testing.T) {
	if _, err := NewCluster(Options{Nodes: 2, Replication: 3}); err == nil {
		t.Fatal("2 nodes with replication 3 accepted")
	}
}

// Property: any sequence of appends followed by ReadAll returns the
// concatenation, across chunk sizes.
func TestAppendReadRoundTripProperty(t *testing.T) {
	f := func(parts [][]byte, chunkExp uint8) bool {
		cs := int64(1) << (chunkExp%8 + 2) // 4..512 bytes
		c, err := NewCluster(Options{Nodes: 4, Replication: 2, ChunkSize: cs})
		if err != nil {
			return false
		}
		if err := c.Create("f"); err != nil {
			return false
		}
		var want []byte
		for _, p := range parts {
			if err := c.Append("f", p); err != nil {
				return false
			}
			want = append(want, p...)
		}
		got, _, err := c.ReadAll("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random in-bounds ReadAt matches the written data.
func TestReadAtRandomAccessProperty(t *testing.T) {
	f := func(data []byte, off16, len16 uint16) bool {
		if len(data) == 0 {
			return true
		}
		c, err := NewCluster(Options{Nodes: 4, Replication: 2, ChunkSize: 32})
		if err != nil {
			return false
		}
		if err := c.Create("f"); err != nil {
			return false
		}
		if err := c.Append("f", data); err != nil {
			return false
		}
		off := int64(off16) % int64(len(data))
		length := int64(len16) % (int64(len(data)) - off + 1)
		got, _, err := c.ReadAt("f", off, length)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[off:off+length])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAtBorrowSingleChunk(t *testing.T) {
	c := newTestCluster(t, 16)
	if err := c.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello tectonic, this spans several chunks of sixteen bytes")
	if err := c.Append("f", data); err != nil {
		t.Fatal(err)
	}

	// Fully inside one chunk: the read is served zero-copy.
	got, borrowed, _, err := c.ReadAtBorrow("f", 17, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !borrowed {
		t.Fatal("single-chunk read not borrowed")
	}
	if !bytes.Equal(got, data[17:27]) {
		t.Fatalf("borrowed read = %q, want %q", got, data[17:27])
	}
	// Appending more data must not disturb the borrowed slice (chunks
	// are append-only and the borrow is capacity-clamped).
	if err := c.Append("f", bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[17:27]) {
		t.Fatalf("borrowed bytes changed after append: %q", got)
	}

	// Spanning a chunk boundary falls back to the copying path.
	got, borrowed, _, err = c.ReadAtBorrow("f", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if borrowed {
		t.Fatal("cross-chunk read claimed borrowed")
	}
	if !bytes.Equal(got, data[10:30]) {
		t.Fatalf("fallback read = %q, want %q", got, data[10:30])
	}

	// Both paths account identically.
	ops, rb := c.ReadOps.Value(), c.ReadBytes.Value()
	if _, _, _, err := c.ReadAtBorrow("f", 17, 10); err != nil {
		t.Fatal(err)
	}
	if c.ReadOps.Value() != ops+1 || c.ReadBytes.Value() != rb+10 {
		t.Fatalf("borrowed read accounting: ops %d->%d bytes %d->%d",
			ops, c.ReadOps.Value(), rb, c.ReadBytes.Value())
	}
	if _, _, err := c.ReadAt("f", 17, 10); err != nil {
		t.Fatal(err)
	}
	if c.ReadOps.Value() != ops+2 || c.ReadBytes.Value() != rb+20 {
		t.Fatalf("copying read accounting: ops %d bytes %d",
			c.ReadOps.Value(), c.ReadBytes.Value())
	}
}
