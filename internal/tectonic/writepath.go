package tectonic

import (
	"fmt"
	"sort"
	"time"

	"dsi/internal/tectonic/faults"
)

// WriteTrace accounts the recovery work behind one tokened append:
// attempts made, retries beyond the first, dedup hits against already
// landed bytes, torn-ack repairs that resumed a partial payload, and
// the virtual backoff paid between attempts.
type WriteTrace struct {
	Attempts    int64
	Retries     int64
	Dedups      int64
	TornRepairs int64
	Backoff     time.Duration
}

// Merge folds another trace into t.
func (t *WriteTrace) Merge(o WriteTrace) {
	t.Attempts += o.Attempts
	t.Retries += o.Retries
	t.Dedups += o.Dedups
	t.TornRepairs += o.TornRepairs
	t.Backoff += o.Backoff
}

// tokenState is one entry of a file's idempotent-append ledger: how much
// of the token's payload has durably landed. applied == total means the
// append succeeded even if its ack never reached the writer.
type tokenState struct {
	applied int64
	total   int64
}

// writeFaultsActive reports whether appends must take the fault-aware
// slow path. With a nil schedule and no condemned nodes this is the
// write path's single extra branch — appends then run the exact legacy
// code, matching the read side's fast-path discipline.
func (c *Cluster) writeFaultsActive() bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.schedule != nil || len(c.condemned) > 0
}

// AppendToken appends data to the file idempotently under the given
// write token, retrying with capped jittered backoff (virtual time —
// nothing sleeps) while the error taxonomy says the failure is worth
// retrying. The token makes retries safe against torn acks: a retry
// whose previous attempt actually landed deduplicates against the
// ledger instead of double-appending, and a partially landed payload is
// resumed from the first missing byte. Tokens must be unique per logical
// append (e.g. "path@offset") and are only tracked while write faults
// are active; a fault-free cluster takes the legacy fast path.
func (c *Cluster) AppendToken(path, token string, data []byte) (WriteTrace, error) {
	var trace WriteTrace
	f, err := c.lookup(path)
	if err != nil {
		return trace, err
	}
	if !c.writeFaultsActive() {
		trace.Attempts = 1
		return trace, c.appendLegacy(f, path, data)
	}
	sched := c.FaultSchedule()
	pol := c.opts.Retry
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			trace.Retries++
			c.fmu.Lock()
			c.counters.AppendRetries++
			c.fmu.Unlock()
			step := pol.BaseBackoff << (attempt - 1)
			if step > pol.MaxBackoff || step <= 0 {
				step = pol.MaxBackoff
			}
			trace.Backoff += step + sched.Jitter(step/2, 0, path, int64(len(data)), attempt)
		}
		trace.Attempts++
		err := c.appendAttempt(f, path, token, data, sched, attempt, &trace)
		if err == nil {
			return trace, nil
		}
		if !IsRetryable(err) {
			return trace, err
		}
		lastErr = err
	}
	return trace, fmt.Errorf("%w: append to %s gave up after %d attempts: %w",
		ErrAllReplicas, path, pol.MaxAttempts, lastErr)
}

// appendAttempt drives one fault-evaluated append attempt. Each chunk
// fragment's fate is decided across ALL its replicas before any replica
// is touched, preserving the lockstep invariant: a fragment lands on
// every replica or on none. A WriteFailing or Down verdict fails the
// fragment cleanly; a WriteTorn verdict lands the fragment everywhere
// and then loses the ack (ErrTornAck) — the case only a token recovers
// from without duplicating.
func (c *Cluster) appendAttempt(f *fileMeta, path, token string, data []byte, sched *faults.Schedule, attempt int, trace *WriteTrace) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return fmt.Errorf("%w: %s", ErrClosed, path)
	}
	total := int64(len(data))
	var ts *tokenState
	if token != "" {
		if f.tokens == nil {
			f.tokens = make(map[string]*tokenState)
		}
		ts = f.tokens[token]
		if ts == nil {
			ts = &tokenState{total: total}
			f.tokens[token] = ts
		} else {
			if ts.total != total {
				return fmt.Errorf("tectonic: write token %q reused with a different payload (%d bytes, ledger has %d) on %s",
					token, total, ts.total, path)
			}
			if ts.applied == ts.total {
				trace.Dedups++
				c.fmu.Lock()
				c.counters.AppendDedups++
				c.fmu.Unlock()
				return nil
			}
			if ts.applied > 0 {
				trace.TornRepairs++
				c.fmu.Lock()
				c.counters.TornRepairs++
				c.fmu.Unlock()
			}
		}
		data = data[ts.applied:]
	}
	now := c.opts.Clock.Now()
	cs := c.opts.ChunkSize
	for len(data) > 0 {
		chunkIdx := f.size / cs
		within := f.size % cs
		n := cs - within
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		if chunkIdx == int64(len(f.replicas)) {
			f.replicas = append(f.replicas, c.placementHealthy(path, chunkIdx, now, sched))
		}
		stream := fmt.Sprintf("%s#%d", path, chunkIdx)
		torn := false
		for _, nodeID := range f.replicas[chunkIdx] {
			st, win := sched.WriteState(nodeID, now)
			switch st {
			case faults.Down:
				return fmt.Errorf("%w: node %d writing %s chunk %d", ErrNodeDown, nodeID, path, chunkIdx)
			case faults.WriteFailing:
				if sched.Fires(win.ErrProb, nodeID, stream, within, attempt) {
					return fmt.Errorf("%w: node %d writing %s chunk %d (attempt %d)", ErrNodeIO, nodeID, path, chunkIdx, attempt)
				}
			case faults.WriteTorn:
				if sched.Fires(win.ErrProb, nodeID, stream, within, attempt) {
					torn = true
				}
			case faults.WriteSlow:
				c.fmu.Lock()
				c.counters.SlowWriteServes++
				c.fmu.Unlock()
			}
		}
		for _, nodeID := range f.replicas[chunkIdx] {
			node := c.nodes[nodeID]
			key := chunkKey{path: path, index: chunkIdx}
			node.mu.Lock()
			buf := node.chunks[key]
			if int64(len(buf)) != within {
				node.mu.Unlock()
				panic(fmt.Sprintf("tectonic: replica divergence at %s chunk %d: len %d want %d",
					path, chunkIdx, len(buf), within))
			}
			node.chunks[key] = append(buf, data[:n]...)
			node.mu.Unlock()
		}
		f.size += n
		if ts != nil {
			ts.applied += n
		}
		data = data[n:]
		if torn {
			c.fmu.Lock()
			c.counters.TornAcks++
			c.fmu.Unlock()
			return fmt.Errorf("%w: %s chunk %d (attempt %d)", ErrTornAck, path, chunkIdx, attempt)
		}
	}
	return nil
}

// placementHealthy picks a new chunk's replicas with health-ranked
// placement: the full rendezvous order is re-scored by each node's
// write-path state and condemnation tally (replicas quarantined by
// checksum verification), and the best Replication nodes win. Ties
// preserve rendezvous order, so a fully healthy cluster places exactly
// like the legacy path; a storm where every node is equally sick does
// too — avoidance only kicks in when some nodes are genuinely worse.
func (c *Cluster) placementHealthy(path string, chunk int64, now time.Duration, sched *faults.Schedule) []int {
	order := c.rendezvousOrder(path, chunk)
	r := c.opts.Replication
	c.fmu.Lock()
	condemned := make(map[int]bool, len(c.condemned))
	for n, cnt := range c.condemned {
		if cnt > 0 {
			condemned[n] = true
		}
	}
	c.fmu.Unlock()

	type cand struct {
		node, score int
	}
	cands := make([]cand, len(order))
	for i, n := range order {
		score := 0
		switch st, _ := sched.WriteState(n, now); st {
		case faults.Down:
			score = 8
		case faults.WriteFailing, faults.WriteTorn:
			score = 2
		case faults.WriteSlow:
			score = 1
		}
		if score < 8 && condemned[n] {
			score += 2
		}
		cands[i] = cand{node: n, score: score}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	out := make([]int, r)
	avoided := false
	for i := range out {
		out[i] = cands[i].node
		if out[i] != order[i] {
			avoided = true
		}
	}
	if avoided {
		c.fmu.Lock()
		c.counters.PlacementAvoids++
		c.fmu.Unlock()
	}
	return out
}
