package tectonic

import (
	"bytes"
	"errors"
	"testing"

	"dsi/internal/tectonic/faults"
)

// writeFixture builds an empty unsealed file on a small-chunk cluster.
func writeFixture(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Nodes == 0 {
		opts.Nodes = 6
	}
	if opts.Replication == 0 {
		opts.Replication = 3
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = 1 << 12
	}
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Create("w"); err != nil {
		t.Fatal(err)
	}
	return c
}

func payload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*131 + 7)
	}
	return data
}

func readBack(t *testing.T, c *Cluster, path string) []byte {
	t.Helper()
	got, _, err := c.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWriteFaultFlakyAppendRetries(t *testing.T) {
	// Every node write-flaky: placement cannot route around the fault,
	// so the capped-backoff retry loop must carry the append. A fragment
	// needs all three replicas to pass their draw, so keep p moderate
	// and the attempt budget generous.
	c := writeFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 32}})
	sched := faults.NewSchedule(7)
	for n := 0; n < 6; n++ {
		sched.FailWrites(n, 0, 0, 0.25)
	}
	c.SetFaultSchedule(sched)

	data := payload(3 << 12) // three chunks
	trace, err := c.AppendToken("w", "w@0", data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBack(t, c, "w"), data) {
		t.Fatal("retried append stored wrong bytes")
	}
	if trace.Retries == 0 || trace.Backoff == 0 {
		t.Fatalf("append under cluster-wide write flake needed no retries: %+v", trace)
	}
	if fc := c.FaultCounters(); fc.AppendRetries == 0 {
		t.Fatalf("cluster counters missed the append retries: %+v", fc)
	}
}

func TestWriteFaultTornAckDeduplicates(t *testing.T) {
	// Torn acks at p=1 on every node: the first attempt lands the bytes
	// and loses the ack, and every retry must hit the token ledger's
	// dedup path instead of double-appending.
	c := writeFixture(t, Options{})
	sched := faults.NewSchedule(3)
	for n := 0; n < 6; n++ {
		sched.TornWrites(n, 0, 0, 1)
	}
	c.SetFaultSchedule(sched)

	data := payload(100)
	trace, err := c.AppendToken("w", "w@0", data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBack(t, c, "w"), data) {
		t.Fatal("torn-ack append stored wrong bytes (duplicate or loss)")
	}
	if trace.Dedups == 0 {
		t.Fatalf("retry of a landed append did not deduplicate: %+v", trace)
	}
	fc := c.FaultCounters()
	if fc.TornAcks == 0 || fc.AppendDedups == 0 {
		t.Fatalf("cluster counters missed the torn ack / dedup: %+v", fc)
	}

	// A second logical append with a fresh token must land after the
	// first, exactly once.
	more := payload(60)
	if _, err := c.AppendToken("w", "w@100", more); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), data...), more...)
	if !bytes.Equal(readBack(t, c, "w"), want) {
		t.Fatal("second tokened append corrupted the file")
	}
}

func TestWriteFaultTornRepairResumesPartialPayload(t *testing.T) {
	// A multi-chunk payload under probabilistic torn acks: some attempt
	// tears mid-payload, and the retry must resume from the first
	// missing byte — the file ends up byte-exact with no duplicate
	// fragments.
	c := writeFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 32}})
	sched := faults.NewSchedule(11)
	for n := 0; n < 6; n++ {
		sched.TornWrites(n, 0, 0, 0.6)
	}
	c.SetFaultSchedule(sched)

	data := payload(5 << 12) // five chunks: room to tear mid-payload
	trace, err := c.AppendToken("w", "w@0", data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBack(t, c, "w"), data) {
		t.Fatal("torn-repair append stored wrong bytes")
	}
	if trace.TornRepairs == 0 && trace.Dedups == 0 {
		t.Fatalf("no repair or dedup recorded under p=0.6 torn acks: %+v", trace)
	}
}

func TestWriteFaultDownNodePlacementAvoided(t *testing.T) {
	// One node down: every new chunk must be placed on the remaining
	// nodes, and at least one placement must differ from pure rendezvous
	// (the down node would otherwise appear in some replica set).
	c := writeFixture(t, Options{})
	const down = 2
	c.SetFaultSchedule(faults.NewSchedule(5).Down(down, 0, 0))

	data := payload(8 << 12)
	if _, err := c.AppendToken("w", "w@0", data); err != nil {
		t.Fatal(err)
	}
	f, err := c.lookup("w")
	if err != nil {
		t.Fatal(err)
	}
	for idx, reps := range f.replicas {
		for _, n := range reps {
			if n == down {
				t.Fatalf("chunk %d placed on down node %d", idx, down)
			}
		}
		if len(reps) != c.opts.Replication {
			t.Fatalf("chunk %d has %d replicas, want %d", idx, len(reps), c.opts.Replication)
		}
	}
	if fc := c.FaultCounters(); fc.PlacementAvoids == 0 {
		t.Fatalf("no placement avoidance recorded with a down node: %+v", fc)
	}
	if !bytes.Equal(readBack(t, c, "w"), data) {
		t.Fatal("health-placed append stored wrong bytes")
	}
}

func TestWriteFaultHealthyPlacementMatchesLegacy(t *testing.T) {
	// An installed but idle schedule must not move placement: layouts
	// stay deterministic across fault-free and fault-capable runs.
	plain := writeFixture(t, Options{})
	idle := writeFixture(t, Options{})
	idle.SetFaultSchedule(faults.NewSchedule(1))

	data := payload(6 << 12)
	if err := plain.Append("w", data); err != nil {
		t.Fatal(err)
	}
	if _, err := idle.AppendToken("w", "w@0", data); err != nil {
		t.Fatal(err)
	}
	fp, _ := plain.lookup("w")
	fi, _ := idle.lookup("w")
	if len(fp.replicas) != len(fi.replicas) {
		t.Fatalf("chunk counts diverge: %d vs %d", len(fp.replicas), len(fi.replicas))
	}
	for i := range fp.replicas {
		for j := range fp.replicas[i] {
			if fp.replicas[i][j] != fi.replicas[i][j] {
				t.Fatalf("chunk %d placement diverges: %v vs %v", i, fp.replicas[i], fi.replicas[i])
			}
		}
	}
	if fc := idle.FaultCounters(); fc.PlacementAvoids != 0 {
		t.Fatalf("idle schedule recorded placement avoids: %+v", fc)
	}
}

func TestWriteFaultSealRetriesThenSucceeds(t *testing.T) {
	c := writeFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 16}})
	if _, err := c.AppendToken("w", "w@0", payload(64)); err != nil {
		t.Fatal(err)
	}
	c.SetFaultSchedule(faults.NewSchedule(13).FailSeals(0, 0, 0.5))
	if err := c.Seal("w"); err != nil {
		t.Fatal(err)
	}
	if fc := c.FaultCounters(); fc.SealRetries == 0 {
		t.Fatalf("seal under p=0.5 flake needed no retries: %+v", fc)
	}
	if err := c.Append("w", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after seal: %v, want ErrClosed", err)
	}
}

func TestWriteFaultSealExhaustionIsRetryable(t *testing.T) {
	c := writeFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 4}})
	c.SetFaultSchedule(faults.NewSchedule(1).FailSeals(0, 0, 1))
	err := c.Seal("w")
	if err == nil {
		t.Fatal("seal succeeded under p=1 seal failure")
	}
	if !IsRetryable(err) {
		t.Fatalf("exhausted seal error not retryable: %v", err)
	}
	// The file must remain unsealed and appendable once the storm lifts.
	c.SetFaultSchedule(nil)
	if err := c.Append("w", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Seal("w"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFaultDownExhaustsBudget(t *testing.T) {
	// All nodes down: the retry budget exhausts and the error wraps both
	// the give-up sentinel and the underlying cause.
	c := writeFixture(t, Options{Retry: RetryPolicy{MaxAttempts: 3}})
	sched := faults.NewSchedule(1)
	for n := 0; n < 6; n++ {
		sched.Down(n, 0, 0)
	}
	c.SetFaultSchedule(sched)
	_, err := c.AppendToken("w", "w@0", payload(10))
	if !errors.Is(err, ErrAllReplicas) || !errors.Is(err, ErrNodeDown) {
		t.Fatalf("exhausted append error = %v, want ErrAllReplicas wrapping ErrNodeDown", err)
	}
}

func TestWriteFaultTokenLedgerClearedOnSeal(t *testing.T) {
	c := writeFixture(t, Options{})
	sched := faults.NewSchedule(3)
	for n := 0; n < 6; n++ {
		sched.TornWrites(n, 0, 0, 1)
	}
	c.SetFaultSchedule(sched)
	if _, err := c.AppendToken("w", "w@0", payload(10)); err != nil {
		t.Fatal(err)
	}
	c.SetFaultSchedule(nil)
	if err := c.Seal("w"); err != nil {
		t.Fatal(err)
	}
	f, _ := c.lookup("w")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tokens != nil {
		t.Fatal("token ledger survived the seal")
	}
}

func TestWriteFaultFastPathSkipsLedger(t *testing.T) {
	// No schedule: AppendToken must take the legacy path and allocate no
	// token ledger.
	c := writeFixture(t, Options{})
	trace, err := c.AppendToken("w", "w@0", payload(100))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Attempts != 1 || trace.Retries != 0 {
		t.Fatalf("fault-free append took the slow path: %+v", trace)
	}
	f, _ := c.lookup("w")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tokens != nil {
		t.Fatal("fault-free append allocated a token ledger")
	}
}

func TestWriteFaultReadWindowsInvisibleToWrites(t *testing.T) {
	// A pure read storm (flaky/down reads) must not fail appends: the
	// write view only sees write-shaped windows and Down. Node 0 down is
	// shared; flaky-read node 1 serves writes normally.
	c := writeFixture(t, Options{})
	c.SetFaultSchedule(faults.NewSchedule(9).Flaky(1, 0, 0, 1))

	data := payload(2 << 12)
	trace, err := c.AppendToken("w", "w@0", data)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Retries != 0 {
		t.Fatalf("append retried under a read-only storm: %+v", trace)
	}
	if !bytes.Equal(readBack(t, c, "w"), data) {
		t.Fatal("append under read storm stored wrong bytes")
	}
}
