// Package tensor materializes preprocessed columnar batches into the
// tensors a trainer loads into device memory (§3.2): a dense feature
// matrix, per-feature sparse index lists in CSR-style layout (the format
// DLRM embedding lookups consume), and a label vector.
package tensor

import (
	"fmt"
	"math"
	"sort"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// Dense2D is a row-major [Rows x Cols] float32 matrix.
type Dense2D struct {
	Rows, Cols int
	Data       []float32
}

// At returns element (r, c).
func (d *Dense2D) At(r, c int) float32 { return d.Data[r*d.Cols+c] }

// SparseTensor is one sparse feature in CSR layout across the batch.
type SparseTensor struct {
	Feature schema.FeatureID
	// Offsets has Rows+1 entries.
	Offsets []int32
	Indices []int64
}

// Row returns row i's indices.
func (s *SparseTensor) Row(i int) []int64 { return s.Indices[s.Offsets[i]:s.Offsets[i+1]] }

// Batch is a fully materialized training mini-batch.
type Batch struct {
	Rows int
	// DenseFeatureIDs names the columns of Dense, in ascending ID order.
	DenseFeatureIDs []schema.FeatureID
	Dense           *Dense2D
	Sparse          []*SparseTensor
	Labels          []float32

	// Split and Seq are the batch's delivery provenance: the 1-based
	// split it was materialized from and its 1-based position within
	// that split's batch sequence. Split == 0 means untagged (synthetic
	// or legacy batches). SeqCount is the total number of batches the
	// split sliced into, letting consumers compact their dedup ledgers
	// once a split has been seen in full. They are not part of the
	// content codec (AppendBinary/DecodeBinary); the DPP data plane
	// transports them alongside the frame so trainers can deduplicate
	// re-deliveries when a crashed worker's splits are reprocessed —
	// split slicing is deterministic, so (Split, Seq) names the same
	// rows on every run.
	Split    int32
	Seq      int32
	SeqCount int32

	// pooled marks a batch whose slices were drawn from the wire codec's
	// pools (DecodeBinary); Release recycles them. Unexported, so gob and
	// struct literals leave it false and Release stays a no-op for
	// ordinary batches.
	pooled bool
}

// SizeBytes reports the wire/memory footprint of the batch: 4 bytes per
// dense cell and label, 8 per sparse index, 4 per offset.
func (b *Batch) SizeBytes() int64 {
	var total int64 = int64(len(b.Labels)) * 4
	if b.Dense != nil {
		total += int64(len(b.Dense.Data)) * 4
	}
	for _, s := range b.Sparse {
		total += int64(len(s.Indices))*8 + int64(len(s.Offsets))*4
	}
	return total
}

// Materialize converts a preprocessed columnar batch into tensors,
// selecting the given dense and sparse features. Missing dense values
// materialize as zeros (the standard imputation); missing sparse rows as
// empty lists.
func Materialize(src *dwrf.Batch, denseIDs, sparseIDs []schema.FeatureID) (*Batch, error) {
	dIDs := append([]schema.FeatureID(nil), denseIDs...)
	sort.Slice(dIDs, func(i, j int) bool { return dIDs[i] < dIDs[j] })
	sIDs := append([]schema.FeatureID(nil), sparseIDs...)
	sort.Slice(sIDs, func(i, j int) bool { return sIDs[i] < sIDs[j] })

	out := &Batch{
		Rows:            src.Rows,
		DenseFeatureIDs: dIDs,
		Labels:          append([]float32(nil), src.Labels...),
	}
	if len(out.Labels) < src.Rows {
		// Batches decoded without a label stream still materialize with
		// zero labels.
		out.Labels = append(out.Labels, make([]float32, src.Rows-len(out.Labels))...)
	}

	out.Dense = &Dense2D{Rows: src.Rows, Cols: len(dIDs), Data: make([]float32, src.Rows*len(dIDs))}
	for c, id := range dIDs {
		col, ok := src.Dense[id]
		if !ok {
			continue
		}
		if len(col.Values) != src.Rows {
			return nil, fmt.Errorf("tensor: dense feature %d has %d values for %d rows", id, len(col.Values), src.Rows)
		}
		for r := 0; r < src.Rows; r++ {
			if col.Present[r] {
				out.Dense.Data[r*len(dIDs)+c] = col.Values[r]
			}
		}
	}

	for _, id := range sIDs {
		st := &SparseTensor{Feature: id}
		col, ok := src.Sparse[id]
		if !ok {
			st.Offsets = make([]int32, src.Rows+1)
		} else {
			if len(col.Offsets) != src.Rows+1 {
				return nil, fmt.Errorf("tensor: sparse feature %d has %d offsets for %d rows", id, len(col.Offsets), src.Rows)
			}
			st.Offsets = append([]int32(nil), col.Offsets...)
			if col.IsDict() {
				// Dictionary-indexed column: expand to actual IDs here so
				// the delivered tensor is representation-independent.
				st.Indices = make([]int64, len(col.Values))
				for i, idx := range col.Values {
					st.Indices[i] = col.Dict[idx]
				}
			} else {
				st.Indices = append([]int64(nil), col.Values...)
			}
		}
		out.Sparse = append(out.Sparse, st)
	}
	return out, nil
}

// ContentSum is an order-independent digest of delivered tensor content,
// used by end-to-end tests to prove the DPP pipeline delivers exactly
// the written data regardless of split and batch arrival order: row
// count, a label digest, per-dense-feature value digests, and
// per-sparse-feature index sums and counts. Float values are digested by
// summing their IEEE-754 bit patterns (wrapping uint64 arithmetic), so
// accumulation order never changes the result and a missing value
// (materialized 0.0) contributes nothing.
type ContentSum struct {
	Rows   int64
	Labels uint64
	Dense  map[schema.FeatureID]uint64
	Sparse map[schema.FeatureID]int64
	Counts map[schema.FeatureID]int64
}

// NewContentSum returns an empty digest.
func NewContentSum() *ContentSum {
	return &ContentSum{
		Dense:  make(map[schema.FeatureID]uint64),
		Sparse: make(map[schema.FeatureID]int64),
		Counts: make(map[schema.FeatureID]int64),
	}
}

// AddBatch folds one delivered batch into the digest.
func (c *ContentSum) AddBatch(b *Batch) {
	c.Rows += int64(b.Rows)
	for _, l := range b.Labels {
		c.Labels += uint64(math.Float32bits(l))
	}
	for col, id := range b.DenseFeatureIDs {
		for r := 0; r < b.Rows; r++ {
			c.Dense[id] += uint64(math.Float32bits(b.Dense.At(r, col)))
		}
	}
	for _, s := range b.Sparse {
		for _, idx := range s.Indices {
			c.Sparse[s.Feature] += idx
		}
		c.Counts[s.Feature] += int64(len(s.Indices))
	}
}

// AddLabel folds one expected label into the digest.
func (c *ContentSum) AddLabel(l float32) {
	c.Labels += uint64(math.Float32bits(l))
}

// AddDense folds one expected dense value into the digest.
func (c *ContentSum) AddDense(id schema.FeatureID, v float32) {
	c.Dense[id] += uint64(math.Float32bits(v))
}

// AddSparse folds one expected sparse value list into the digest.
func (c *ContentSum) AddSparse(id schema.FeatureID, vals []int64) {
	for _, v := range vals {
		c.Sparse[id] += v
	}
	c.Counts[id] += int64(len(vals))
}

// Equal reports whether two digests match exactly. Zero-valued map
// entries are treated as absent so an expected feature that never
// appeared and a digest that never saw it compare equal.
func (c *ContentSum) Equal(other *ContentSum) bool {
	if c.Rows != other.Rows || c.Labels != other.Labels {
		return false
	}
	eqU := func(a, b map[schema.FeatureID]uint64) bool {
		for id, v := range a {
			if v != b[id] {
				return false
			}
		}
		for id, v := range b {
			if v != a[id] {
				return false
			}
		}
		return true
	}
	eqI := func(a, b map[schema.FeatureID]int64) bool {
		for id, v := range a {
			if v != b[id] {
				return false
			}
		}
		for id, v := range b {
			if v != a[id] {
				return false
			}
		}
		return true
	}
	return eqU(c.Dense, other.Dense) && eqI(c.Sparse, other.Sparse) && eqI(c.Counts, other.Counts)
}

// Concat stacks batches row-wise. All batches must share the same feature
// layout. Output sizes are summed up front so every slice is allocated
// exactly once instead of growing through repeated append.
func Concat(batches []*Batch) (*Batch, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("tensor: concat of zero batches")
	}
	first := batches[0]
	totalRows := 0
	indexTotals := make([]int, len(first.Sparse))
	for _, b := range batches {
		if b.Dense.Cols != first.Dense.Cols || len(b.Sparse) != len(first.Sparse) {
			return nil, fmt.Errorf("tensor: concat layout mismatch: %d/%d cols, %d/%d sparse",
				b.Dense.Cols, first.Dense.Cols, len(b.Sparse), len(first.Sparse))
		}
		totalRows += b.Rows
		for i, s := range b.Sparse {
			if s.Feature != first.Sparse[i].Feature {
				return nil, fmt.Errorf("tensor: concat sparse feature mismatch %d vs %d", first.Sparse[i].Feature, s.Feature)
			}
			indexTotals[i] += len(s.Indices)
		}
	}

	out := &Batch{
		Rows: totalRows,
		// Copied, not aliased: the inputs may be pool-backed decoded
		// batches whose slices return to the codec pools on Release.
		DenseFeatureIDs: append([]schema.FeatureID(nil), first.DenseFeatureIDs...),
		Dense:           &Dense2D{Rows: totalRows, Cols: first.Dense.Cols, Data: make([]float32, 0, totalRows*first.Dense.Cols)},
		Labels:          make([]float32, 0, totalRows),
		Sparse:          make([]*SparseTensor, 0, len(first.Sparse)),
	}
	for i, s := range first.Sparse {
		st := &SparseTensor{
			Feature: s.Feature,
			Offsets: make([]int32, 1, totalRows+1),
			Indices: make([]int64, 0, indexTotals[i]),
		}
		out.Sparse = append(out.Sparse, st)
	}
	for _, b := range batches {
		out.Labels = append(out.Labels, b.Labels...)
		out.Dense.Data = append(out.Dense.Data, b.Dense.Data...)
		for i, s := range b.Sparse {
			dst := out.Sparse[i]
			base := dst.Offsets[len(dst.Offsets)-1]
			for _, off := range s.Offsets[1:] {
				dst.Offsets = append(dst.Offsets, base+off)
			}
			dst.Indices = append(dst.Indices, s.Indices...)
		}
	}
	return out, nil
}
