package tensor

import (
	"testing"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

func srcBatch() *dwrf.Batch {
	return &dwrf.Batch{
		Rows:   3,
		Labels: []float32{1, 0, 1},
		Dense: map[schema.FeatureID]*dwrf.DenseColumn{
			1: {Present: []bool{true, false, true}, Values: []float32{0.5, 0, 1.5}},
			2: {Present: []bool{true, true, true}, Values: []float32{1, 2, 3}},
		},
		Sparse: map[schema.FeatureID]*dwrf.SparseColumn{
			10: {Offsets: []int32{0, 2, 2, 3}, Values: []int64{7, 8, 9}},
		},
		ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
	}
}

func TestMaterialize(t *testing.T) {
	b, err := Materialize(srcBatch(), []schema.FeatureID{2, 1}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 3 || b.Dense.Cols != 2 {
		t.Fatalf("shape = %dx%d", b.Rows, b.Dense.Cols)
	}
	// Columns sorted ascending: col0=feature1, col1=feature2.
	if b.DenseFeatureIDs[0] != 1 || b.DenseFeatureIDs[1] != 2 {
		t.Fatalf("column order = %v", b.DenseFeatureIDs)
	}
	if b.Dense.At(0, 0) != 0.5 || b.Dense.At(1, 0) != 0 || b.Dense.At(2, 1) != 3 {
		t.Fatalf("dense values wrong: %+v", b.Dense)
	}
	if len(b.Sparse) != 1 || b.Sparse[0].Feature != 10 {
		t.Fatalf("sparse = %+v", b.Sparse)
	}
	row0 := b.Sparse[0].Row(0)
	if len(row0) != 2 || row0[0] != 7 {
		t.Fatalf("sparse row0 = %v", row0)
	}
	if len(b.Sparse[0].Row(1)) != 0 {
		t.Fatal("sparse row1 should be empty")
	}
	if b.Labels[0] != 1 || b.Labels[1] != 0 {
		t.Fatalf("labels = %v", b.Labels)
	}
}

func TestMaterializeMissingFeatures(t *testing.T) {
	b, err := Materialize(srcBatch(), []schema.FeatureID{99}, []schema.FeatureID{88})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if b.Dense.At(r, 0) != 0 {
			t.Fatal("missing dense should be zero")
		}
		if len(b.Sparse[0].Row(r)) != 0 {
			t.Fatal("missing sparse should be empty")
		}
	}
}

func TestMaterializeShapeMismatch(t *testing.T) {
	src := srcBatch()
	src.Dense[1].Values = src.Dense[1].Values[:1]
	if _, err := Materialize(src, []schema.FeatureID{1}, nil); err == nil {
		t.Fatal("bad dense shape accepted")
	}
	src2 := srcBatch()
	src2.Sparse[10].Offsets = src2.Sparse[10].Offsets[:2]
	if _, err := Materialize(src2, nil, []schema.FeatureID{10}); err == nil {
		t.Fatal("bad sparse shape accepted")
	}
}

func TestMaterializeMissingLabels(t *testing.T) {
	src := srcBatch()
	src.Labels = nil
	b, err := Materialize(src, []schema.FeatureID{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Labels) != 3 {
		t.Fatalf("labels = %v", b.Labels)
	}
}

func TestSizeBytes(t *testing.T) {
	b, err := Materialize(srcBatch(), []schema.FeatureID{1, 2}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	// labels 3*4 + dense 6*4 + sparse 3*8 + offsets 4*4 = 12+24+24+16 = 76
	if got := b.SizeBytes(); got != 76 {
		t.Fatalf("SizeBytes = %d, want 76", got)
	}
}

func TestConcat(t *testing.T) {
	a, err := Materialize(srcBatch(), []schema.FeatureID{1}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(srcBatch(), []schema.FeatureID{1}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Concat([]*Batch{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Rows != 6 || len(cat.Labels) != 6 {
		t.Fatalf("concat rows = %d", cat.Rows)
	}
	if len(cat.Dense.Data) != 6 {
		t.Fatalf("dense data = %d", len(cat.Dense.Data))
	}
	sp := cat.Sparse[0]
	if len(sp.Offsets) != 7 {
		t.Fatalf("offsets = %v", sp.Offsets)
	}
	// Second copy's row 0 must match the first copy's row 0.
	r0, r3 := sp.Row(0), sp.Row(3)
	if len(r0) != len(r3) || r0[0] != r3[0] {
		t.Fatalf("concat misaligned: %v vs %v", r0, r3)
	}
}

func TestConcatMismatch(t *testing.T) {
	a, err := Materialize(srcBatch(), []schema.FeatureID{1}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(srcBatch(), []schema.FeatureID{1, 2}, []schema.FeatureID{10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Concat([]*Batch{a, b}); err == nil {
		t.Fatal("layout mismatch accepted")
	}
	if _, err := Concat(nil); err == nil {
		t.Fatal("empty concat accepted")
	}
}
