package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dsi/internal/schema"
)

// This file is the explicit wire codec for Batch: length-prefixed,
// little-endian flat-binary frames, replacing reflection-driven gob on
// the worker→trainer data plane (the "datacenter tax" of §6.2 — the
// paper attributes a large share of DPP worker cycles to (de)serializing
// every training byte). Encoding is a single append pass into a caller
// (or pool) provided buffer; decoding validates every count against the
// remaining bytes before allocating, pulls its slices from pools, and
// hands them back through Batch.Release, so a steady-state trainer
// stream costs no per-batch garbage.
//
// Frame layout (all integers little-endian):
//
//	u32  magic "TBF1"
//	u32  frame length (total, including magic and this field)
//	u32  rows
//	u32  nDense   — len(DenseFeatureIDs); equals dense cols when a matrix is present
//	u32  nLabels  — must equal rows
//	u32  hasDense — 0 or 1
//	u32  nSparse
//	i32  × nDense   dense feature IDs (ascending)
//	f32  × nLabels  labels
//	f32  × rows*nDense  dense matrix, row-major (present iff hasDense)
//	then nSparse times:
//	  i32  feature ID
//	  u32  nIndices
//	  i32  × rows+1   CSR offsets (0 ≤ monotone ≤ nIndices, ends at nIndices)
//	  i64  × nIndices indices
//
// A frame decodes to a structurally valid batch or fails: label/offset/
// matrix shapes are enforced here so no downstream consumer (ContentSum,
// SizeBytes, SparseTensor.Row) can be driven out of bounds by corrupt or
// adversarial bytes.

// frameMagic identifies tensor batch frames ("TBF1").
const frameMagic uint32 = 'T' | 'B'<<8 | 'F'<<16 | '1'<<24

// frameHeaderLen is the fixed-size portion of a frame.
const frameHeaderLen = 7 * 4

// EncodedSize reports the exact frame length AppendBinary will produce.
func (b *Batch) EncodedSize() int {
	n := frameHeaderLen
	n += 4 * len(b.DenseFeatureIDs)
	n += 4 * len(b.Labels)
	if b.Dense != nil {
		n += 4 * len(b.Dense.Data)
	}
	for _, s := range b.Sparse {
		n += 4 + 4 + 4*len(s.Offsets) + 8*len(s.Indices)
	}
	return n
}

// AppendBinary appends the batch as one self-delimiting frame and
// returns the extended buffer. Encode into a pooled buffer (GetFrameBuf)
// to make the hot path allocation-free.
func (b *Batch) AppendBinary(dst []byte) []byte {
	dst = appendU32(dst, frameMagic)
	dst = appendU32(dst, uint32(b.EncodedSize()))
	dst = appendU32(dst, uint32(b.Rows))
	dst = appendU32(dst, uint32(len(b.DenseFeatureIDs)))
	dst = appendU32(dst, uint32(len(b.Labels)))
	if b.Dense != nil {
		dst = appendU32(dst, 1)
	} else {
		dst = appendU32(dst, 0)
	}
	dst = appendU32(dst, uint32(len(b.Sparse)))
	for _, id := range b.DenseFeatureIDs {
		dst = appendU32(dst, uint32(int32(id)))
	}
	for _, l := range b.Labels {
		dst = appendU32(dst, math.Float32bits(l))
	}
	if b.Dense != nil {
		for _, v := range b.Dense.Data {
			dst = appendU32(dst, math.Float32bits(v))
		}
	}
	for _, s := range b.Sparse {
		dst = appendU32(dst, uint32(int32(s.Feature)))
		dst = appendU32(dst, uint32(len(s.Indices)))
		for _, off := range s.Offsets {
			dst = appendU32(dst, uint32(off))
		}
		for _, idx := range s.Indices {
			dst = appendU64(dst, uint64(idx))
		}
	}
	return dst
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// frameReader is a bounds-checked cursor over one frame.
type frameReader struct {
	data []byte
	pos  int
}

func (r *frameReader) remaining() int { return len(r.data) - r.pos }

func (r *frameReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("tensor: frame truncated at byte %d", r.pos)
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *frameReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("tensor: frame truncated at byte %d", r.pos)
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

// checkCount validates that count elements of size elem bytes fit in the
// remaining frame, so corrupt counts can never force an allocation larger
// than the input itself.
func (r *frameReader) checkCount(count uint32, elem int, what string) error {
	if int64(count)*int64(elem) > int64(r.remaining()) {
		return fmt.Errorf("tensor: frame claims %d %s (%d bytes) with %d remaining", count, what, int64(count)*int64(elem), r.remaining())
	}
	return nil
}

// DecodeBinary decodes one frame from the front of data, returning the
// batch and the number of bytes consumed. Decoded slices come from
// internal pools; call Batch.Release when the consumer is finished with
// the tensors to recycle them. DecodeBinary never panics on arbitrary
// input: every count is validated against the remaining bytes and the
// decoded batch is structurally checked (label/matrix/CSR shapes) before
// it is returned.
func DecodeBinary(data []byte) (*Batch, int, error) {
	r := frameReader{data: data}
	magic, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if magic != frameMagic {
		return nil, 0, fmt.Errorf("tensor: bad frame magic %#08x", magic)
	}
	frameLen, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if int64(frameLen) > int64(len(data)) || frameLen < frameHeaderLen {
		return nil, 0, fmt.Errorf("tensor: frame length %d outside [%d,%d]", frameLen, frameHeaderLen, len(data))
	}
	// Bound the cursor to the declared frame so trailing bytes (the next
	// frame in a stream) are never misread as part of this one.
	r.data = data[:frameLen]

	rows, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	nDense, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	nLabels, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	hasDense, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	nSparse, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if hasDense > 1 {
		return nil, 0, fmt.Errorf("tensor: frame hasDense = %d", hasDense)
	}
	if nLabels != rows {
		return nil, 0, fmt.Errorf("tensor: frame has %d labels for %d rows", nLabels, rows)
	}
	if hasDense == 0 && nDense != 0 {
		return nil, 0, fmt.Errorf("tensor: frame names %d dense features without a matrix", nDense)
	}

	b := &Batch{Rows: int(rows), pooled: true}
	fail := func(err error) (*Batch, int, error) {
		b.Release()
		return nil, 0, err
	}

	if err := r.checkCount(nDense, 4, "dense feature IDs"); err != nil {
		return fail(err)
	}
	b.DenseFeatureIDs = getIDSlice(int(nDense))
	for i := range b.DenseFeatureIDs {
		v, err := r.u32()
		if err != nil {
			return fail(err)
		}
		b.DenseFeatureIDs[i] = schema.FeatureID(int32(v))
	}

	if err := r.checkCount(nLabels, 4, "labels"); err != nil {
		return fail(err)
	}
	b.Labels = getF32Slice(int(nLabels))
	for i := range b.Labels {
		v, err := r.u32()
		if err != nil {
			return fail(err)
		}
		b.Labels[i] = math.Float32frombits(v)
	}

	if hasDense == 1 {
		cells := uint64(rows) * uint64(nDense)
		if cells*4 > uint64(r.remaining()) {
			return fail(fmt.Errorf("tensor: frame claims %d dense cells with %d bytes remaining", cells, r.remaining()))
		}
		b.Dense = &Dense2D{Rows: int(rows), Cols: int(nDense), Data: getF32Slice(int(cells))}
		for i := range b.Dense.Data {
			v, err := r.u32()
			if err != nil {
				return fail(err)
			}
			b.Dense.Data[i] = math.Float32frombits(v)
		}
	}

	for si := uint32(0); si < nSparse; si++ {
		feat, err := r.u32()
		if err != nil {
			return fail(err)
		}
		nIndices, err := r.u32()
		if err != nil {
			return fail(err)
		}
		nOffsets := uint64(rows) + 1
		if nOffsets*4 > uint64(r.remaining()) {
			return fail(fmt.Errorf("tensor: frame sparse %d offsets truncated", si))
		}
		st := &SparseTensor{Feature: schema.FeatureID(int32(feat)), Offsets: getI32Slice(int(nOffsets))}
		b.Sparse = append(b.Sparse, st) // attach before filling so Release reclaims on failure
		prev := int32(0)
		for i := range st.Offsets {
			v, err := r.u32()
			if err != nil {
				return fail(err)
			}
			off := int32(v)
			if off < prev {
				return fail(fmt.Errorf("tensor: frame sparse %d offsets not monotone", si))
			}
			st.Offsets[i] = off
			prev = off
		}
		if st.Offsets[0] != 0 || uint32(st.Offsets[rows]) != nIndices {
			return fail(fmt.Errorf("tensor: frame sparse %d CSR bounds [%d,%d] for %d indices", si, st.Offsets[0], st.Offsets[rows], nIndices))
		}
		if err := r.checkCount(nIndices, 8, "sparse indices"); err != nil {
			return fail(err)
		}
		st.Indices = getI64Slice(int(nIndices))
		for i := range st.Indices {
			v, err := r.u64()
			if err != nil {
				return fail(err)
			}
			st.Indices[i] = int64(v)
		}
	}

	if r.pos != int(frameLen) {
		return fail(fmt.Errorf("tensor: frame length %d but payload ends at %d", frameLen, r.pos))
	}
	return b, int(frameLen), nil
}

// Release returns a decoded batch's slices to the codec pools. It is a
// no-op for batches not produced by DecodeBinary (Materialize, Concat,
// literals), so consumers can call it unconditionally after loading a
// batch; releasing twice is also safe. The batch must not be used after
// Release.
func (b *Batch) Release() {
	if b == nil || !b.pooled {
		return
	}
	b.pooled = false
	putIDSlice(b.DenseFeatureIDs)
	b.DenseFeatureIDs = nil
	putF32Slice(b.Labels)
	b.Labels = nil
	if b.Dense != nil {
		putF32Slice(b.Dense.Data)
		b.Dense = nil
	}
	for _, s := range b.Sparse {
		putI32Slice(s.Offsets)
		putI64Slice(s.Indices)
		s.Offsets, s.Indices = nil, nil
	}
	b.Sparse = nil
	b.Rows = 0
}

// --- slice and frame-buffer pools --------------------------------------
//
// All pools store pointers to slice headers. Each Put re-boxes the
// header it returns (one small fixed-size allocation — the residual
// allocs/op visible in BENCH_wire.json); the data arrays themselves,
// where the real bytes live, are fully reused across batches.

var (
	framePool = sync.Pool{New: func() any { return new([]byte) }}
	f32Pool   = sync.Pool{New: func() any { return new([]float32) }}
	i32Pool   = sync.Pool{New: func() any { return new([]int32) }}
	i64Pool   = sync.Pool{New: func() any { return new([]int64) }}
	idPool    = sync.Pool{New: func() any { return new([]schema.FeatureID) }}
)

// GetFrameBuf returns a pooled, zero-length byte buffer for frame
// encoding; grow it with AppendBinary and return it with PutFrameBuf.
func GetFrameBuf() []byte {
	return (*framePool.Get().(*[]byte))[:0]
}

// PutFrameBuf recycles a frame buffer obtained from GetFrameBuf (or any
// buffer the caller is done with).
func PutFrameBuf(buf []byte) {
	if buf == nil {
		return
	}
	buf = buf[:0]
	framePool.Put(&buf)
}

func getF32Slice(n int) []float32 {
	sp := f32Pool.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	return (*sp)[:n]
}

func putF32Slice(s []float32) {
	if s == nil {
		return
	}
	f32Pool.Put(&s)
}

func getI32Slice(n int) []int32 {
	sp := i32Pool.Get().(*[]int32)
	if cap(*sp) < n {
		*sp = make([]int32, n)
	}
	return (*sp)[:n]
}

func putI32Slice(s []int32) {
	if s == nil {
		return
	}
	i32Pool.Put(&s)
}

func getI64Slice(n int) []int64 {
	sp := i64Pool.Get().(*[]int64)
	if cap(*sp) < n {
		*sp = make([]int64, n)
	}
	return (*sp)[:n]
}

func putI64Slice(s []int64) {
	if s == nil {
		return
	}
	i64Pool.Put(&s)
}

func getIDSlice(n int) []schema.FeatureID {
	sp := idPool.Get().(*[]schema.FeatureID)
	if cap(*sp) < n {
		*sp = make([]schema.FeatureID, n)
	}
	return (*sp)[:n]
}

func putIDSlice(s []schema.FeatureID) {
	if s == nil {
		return
	}
	idPool.Put(&s)
}
