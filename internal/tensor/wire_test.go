package tensor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"dsi/internal/schema"
)

// wireTestBatch builds a deterministic batch shaped like a real session
// delivery: dense matrix, labels, and two CSR sparse features with
// varying row lengths (including empty rows).
func wireTestBatch(rows, cols int, seed int64) *Batch {
	rng := rand.New(rand.NewSource(seed))
	b := &Batch{
		Rows:   rows,
		Labels: make([]float32, rows),
		Dense:  &Dense2D{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)},
	}
	for c := 0; c < cols; c++ {
		b.DenseFeatureIDs = append(b.DenseFeatureIDs, schema.FeatureID(c+1))
	}
	for i := range b.Labels {
		b.Labels[i] = rng.Float32()
	}
	for i := range b.Dense.Data {
		b.Dense.Data[i] = rng.Float32()
	}
	for f := 0; f < 2; f++ {
		st := &SparseTensor{Feature: schema.FeatureID(100 + f), Offsets: make([]int32, 1, rows+1)}
		for r := 0; r < rows; r++ {
			n := rng.Intn(5)
			for j := 0; j < n; j++ {
				st.Indices = append(st.Indices, rng.Int63n(1<<20))
			}
			st.Offsets = append(st.Offsets, int32(len(st.Indices)))
		}
		b.Sparse = append(b.Sparse, st)
	}
	return b
}

// batchesEqual compares two batches structurally.
func batchesEqual(a, b *Batch) bool {
	if a.Rows != b.Rows || len(a.DenseFeatureIDs) != len(b.DenseFeatureIDs) ||
		len(a.Labels) != len(b.Labels) || len(a.Sparse) != len(b.Sparse) {
		return false
	}
	for i := range a.DenseFeatureIDs {
		if a.DenseFeatureIDs[i] != b.DenseFeatureIDs[i] {
			return false
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	if (a.Dense == nil) != (b.Dense == nil) {
		return false
	}
	if a.Dense != nil {
		if a.Dense.Rows != b.Dense.Rows || a.Dense.Cols != b.Dense.Cols || len(a.Dense.Data) != len(b.Dense.Data) {
			return false
		}
		for i := range a.Dense.Data {
			if a.Dense.Data[i] != b.Dense.Data[i] {
				return false
			}
		}
	}
	for i := range a.Sparse {
		sa, sb := a.Sparse[i], b.Sparse[i]
		if sa.Feature != sb.Feature || len(sa.Offsets) != len(sb.Offsets) || len(sa.Indices) != len(sb.Indices) {
			return false
		}
		for j := range sa.Offsets {
			if sa.Offsets[j] != sb.Offsets[j] {
				return false
			}
		}
		for j := range sa.Indices {
			if sa.Indices[j] != sb.Indices[j] {
				return false
			}
		}
	}
	return true
}

func TestWireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    *Batch
	}{
		{"typical", wireTestBatch(64, 3, 1)},
		{"single-row", wireTestBatch(1, 1, 2)},
		{"no-dense-matrix", &Batch{Rows: 4, Labels: make([]float32, 4),
			Sparse: []*SparseTensor{{Feature: 9, Offsets: []int32{0, 1, 1, 2, 4}, Indices: []int64{5, -7, 1 << 40, 0}}}}},
		{"zero-rows", &Batch{Rows: 0, Dense: &Dense2D{}, DenseFeatureIDs: nil}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frame := tc.b.AppendBinary(nil)
			if len(frame) != tc.b.EncodedSize() {
				t.Fatalf("encoded %d bytes, EncodedSize says %d", len(frame), tc.b.EncodedSize())
			}
			got, n, err := DecodeBinary(frame)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(frame) {
				t.Fatalf("consumed %d of %d bytes", n, len(frame))
			}
			if !batchesEqual(tc.b, got) {
				t.Fatalf("round trip diverged:\n in  %+v\n out %+v", tc.b, got)
			}
			// The content digest — what the e2e tests assert on — must
			// also survive the codec.
			want, have := NewContentSum(), NewContentSum()
			want.AddBatch(tc.b)
			have.AddBatch(got)
			if !want.Equal(have) {
				t.Fatal("content sums diverge across round trip")
			}
			got.Release()
		})
	}
}

func TestWireRoundTripConcatenatedFrames(t *testing.T) {
	// A streaming transport reads frames back to back from one buffer;
	// each decode must consume exactly its own frame.
	a, b := wireTestBatch(16, 2, 3), wireTestBatch(8, 2, 4)
	buf := a.AppendBinary(nil)
	buf = b.AppendBinary(buf)
	gotA, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, m, err := DecodeBinary(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(buf) {
		t.Fatalf("frames consumed %d+%d of %d bytes", n, m, len(buf))
	}
	if !batchesEqual(a, gotA) || !batchesEqual(b, gotB) {
		t.Fatal("concatenated frames diverged")
	}
	gotA.Release()
	gotB.Release()
}

func TestWireDecodeTruncated(t *testing.T) {
	frame := wireTestBatch(32, 2, 5).AppendBinary(nil)
	for i := 0; i < len(frame); i++ {
		if b, _, err := DecodeBinary(frame[:i]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", i, len(frame))
		} else if b != nil {
			t.Fatalf("failed decode returned a batch at %d bytes", i)
		}
	}
}

func TestWireDecodeCorrupt(t *testing.T) {
	base := wireTestBatch(8, 2, 6).AppendBinary(nil)
	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), base...)
		mutate(c)
		return c
	}
	cases := map[string][]byte{
		"bad-magic": corrupt(func(c []byte) { c[0] ^= 0xff }),
		"oversized-frame-len": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[4:], uint32(len(c))+100)
		}),
		"undersized-frame-len": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[4:], uint32(len(c))-8)
		}),
		"label-count-mismatch": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[16:], 3) // nLabels != rows
		}),
		"huge-dense-count": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[12:], 1<<30) // nDense
		}),
		"bad-has-dense": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[20:], 7)
		}),
	}
	for name, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestReleaseIsSafeForUnpooledBatches(t *testing.T) {
	b := wireTestBatch(4, 1, 7)
	labels := b.Labels
	b.Release() // must be a no-op: b did not come from DecodeBinary
	if b.Labels == nil || &b.Labels[0] != &labels[0] {
		t.Fatal("Release mutated an unpooled batch")
	}
	frame := b.AppendBinary(nil)
	dec, _, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	dec.Release()
	dec.Release() // double release must be safe
	if dec.Labels != nil || dec.Sparse != nil || dec.Dense != nil {
		t.Fatal("Release left slices attached")
	}
}

func FuzzBatchDecode(f *testing.F) {
	f.Add(wireTestBatch(16, 2, 1).AppendBinary(nil))
	f.Add(wireTestBatch(1, 0, 2).AppendBinary(nil))
	f.Add((&Batch{Rows: 2, Labels: []float32{1, 2}}).AppendBinary(nil))
	f.Add([]byte("TBF1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBinary(data)
		if err != nil {
			if b != nil {
				t.Fatal("error decode returned a batch")
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must be structurally sound: re-encoding it
		// and decoding again must reproduce it without panicking, and
		// the digest path must be safe to run.
		sum := NewContentSum()
		sum.AddBatch(b)
		_ = b.SizeBytes()
		re := b.AppendBinary(nil)
		b2, _, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !batchesEqual(b, b2) {
			t.Fatal("re-decode diverged")
		}
		b2.Release()
		b.Release()
	})
}

func TestWireFrameBufPool(t *testing.T) {
	b := wireTestBatch(8, 2, 9)
	buf := GetFrameBuf()
	buf = b.AppendBinary(buf)
	if !bytes.Equal(buf, b.AppendBinary(nil)) {
		t.Fatal("pooled encode differs from fresh encode")
	}
	PutFrameBuf(buf)
	PutFrameBuf(nil) // must not panic
}
