// Package tiering implements the heterogeneous-storage proposal of §7.2:
// an SSD tier in front of the HDD-based storage layer that holds the most
// commonly-used feature streams, sized by a byte budget and admitted by
// observed traffic density — the paper's "placing commonly-used features
// on SSD-based caches" opportunity.
//
// The tier is a placement policy plus an accounting model: given per-key
// stored sizes and observed traffic, it decides which keys live on SSD,
// then reports the served-traffic split, the effective IOPS load left on
// the HDD layer, and the power cost of the hybrid versus pure-HDD or
// pure-SSD fleets.
package tiering

import (
	"fmt"
	"sort"
	"sync"

	"dsi/internal/hw"
)

// Tier assigns hot byte ranges (feature streams) to an SSD budget.
type Tier struct {
	// BudgetBytes is the SSD capacity available for caching.
	BudgetBytes int64

	mu      sync.Mutex
	stored  map[string]int64
	traffic map[string]int64
	hot     map[string]bool

	hits, misses int64
	hitBytes     int64
	missBytes    int64
}

// New returns an empty tier with the given SSD byte budget.
func New(budgetBytes int64) *Tier {
	return &Tier{
		BudgetBytes: budgetBytes,
		stored:      make(map[string]int64),
		traffic:     make(map[string]int64),
		hot:         make(map[string]bool),
	}
}

// Observe records stored size and one access of bytes for a key. Call it
// from the read path; Rebalance consumes the aggregate.
func (t *Tier) Observe(key string, storedBytes, accessBytes int64) {
	t.mu.Lock()
	t.stored[key] = storedBytes
	t.traffic[key] += accessBytes
	hot := t.hot[key]
	if hot {
		t.hits++
		t.hitBytes += accessBytes
	} else {
		t.misses++
		t.missBytes += accessBytes
	}
	t.mu.Unlock()
}

// Rebalance recomputes the hot set: keys are ranked by traffic density
// (served bytes per stored byte) and admitted greedily until the budget
// is spent. It returns the number of keys now on SSD.
func (t *Tier) Rebalance() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	type ranked struct {
		key     string
		density float64
		size    int64
	}
	items := make([]ranked, 0, len(t.stored))
	for k, size := range t.stored {
		if size <= 0 {
			continue
		}
		items = append(items, ranked{key: k, density: float64(t.traffic[k]) / float64(size), size: size})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].density != items[j].density {
			return items[i].density > items[j].density
		}
		return items[i].key < items[j].key
	})
	t.hot = make(map[string]bool, len(items))
	var used int64
	for _, it := range items {
		if used+it.size > t.BudgetBytes {
			continue
		}
		used += it.size
		t.hot[it.key] = true
	}
	return len(t.hot)
}

// IsHot reports whether key currently lives on the SSD tier.
func (t *Tier) IsHot(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hot[key]
}

// HitRate reports the byte-weighted fraction of observed traffic served
// from SSD since construction.
func (t *Tier) HitRate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.hitBytes + t.missBytes
	if total == 0 {
		return 0
	}
	return float64(t.hitBytes) / float64(total)
}

// ResetCounters clears hit/miss accounting (placement is kept).
func (t *Tier) ResetCounters() {
	t.mu.Lock()
	t.hits, t.misses, t.hitBytes, t.missBytes = 0, 0, 0, 0
	t.mu.Unlock()
}

// FleetPlan compares storage fleets for a given dataset and throughput
// demand, with and without the SSD tier.
type FleetPlan struct {
	DatasetBytes int64
	Replication  int
	DemandGBps   float64
	AvgIOBytes   int64
	HDD, SSD     hw.DiskSpec
	DisksPerNode int
	HDDNodeWatts float64
	SSDNodeWatts float64
	// HotTrafficShare is the fraction of traffic the SSD tier absorbs
	// (from Tier.HitRate or the Figure 7 CDF).
	HotTrafficShare float64
	// HotBytesShare is the fraction of dataset bytes on SSD.
	HotBytesShare float64
}

// Evaluation is the power outcome of one fleet layout.
type Evaluation struct {
	HDDNodes, SSDNodes float64
	TotalWatts         float64
}

func (p FleetPlan) nodesFor(disk hw.DiskSpec, bytes int64, gbps float64) (nodes float64) {
	capNodes := float64(bytes) * float64(p.Replication) / (disk.CapacityTB * 1e12 * float64(p.DisksPerNode))
	perDiskGBps := disk.RandIOPS(p.AvgIOBytes) * float64(p.AvgIOBytes) / 1e9
	iopsNodes := gbps / (perDiskGBps * float64(p.DisksPerNode))
	if iopsNodes > capNodes {
		return iopsNodes
	}
	return capNodes
}

// PureHDD sizes an all-HDD fleet (the paper's status quo: IOPS-driven
// over-provisioning).
func (p FleetPlan) PureHDD() Evaluation {
	n := p.nodesFor(p.HDD, p.DatasetBytes, p.DemandGBps)
	return Evaluation{HDDNodes: n, TotalWatts: n * p.HDDNodeWatts}
}

// PureSSD sizes an all-SSD fleet (capacity-driven, §7.2's unfavourable
// storage-to-throughput direction).
func (p FleetPlan) PureSSD() Evaluation {
	n := p.nodesFor(p.SSD, p.DatasetBytes, p.DemandGBps)
	return Evaluation{SSDNodes: n, TotalWatts: n * p.SSDNodeWatts}
}

// Tiered sizes the hybrid: SSDs hold the hot bytes and absorb the hot
// traffic; HDDs hold everything (durability copies) but serve only the
// cold remainder.
func (p FleetPlan) Tiered() (Evaluation, error) {
	if p.HotTrafficShare < 0 || p.HotTrafficShare > 1 || p.HotBytesShare < 0 || p.HotBytesShare > 1 {
		return Evaluation{}, fmt.Errorf("tiering: shares out of range")
	}
	ssdBytes := int64(float64(p.DatasetBytes) * p.HotBytesShare)
	ssd := p.nodesFor(p.SSD, ssdBytes, p.DemandGBps*p.HotTrafficShare)
	hdd := p.nodesFor(p.HDD, p.DatasetBytes, p.DemandGBps*(1-p.HotTrafficShare))
	return Evaluation{
		HDDNodes:   hdd,
		SSDNodes:   ssd,
		TotalWatts: hdd*p.HDDNodeWatts + ssd*p.SSDNodeWatts,
	}, nil
}
