package tiering

import (
	"fmt"
	"testing"
	"testing/quick"

	"dsi/internal/hw"
)

func TestRebalanceAdmitsByDensity(t *testing.T) {
	tier := New(100)
	tier.Observe("hot", 80, 1000) // density 12.5
	tier.Observe("warm", 50, 200) // density 4
	tier.Observe("cold", 100, 10) // density 0.1
	n := tier.Rebalance()
	if n != 1 || !tier.IsHot("hot") {
		t.Fatalf("Rebalance admitted %d keys; hot=%v", n, tier.IsHot("hot"))
	}
	if tier.IsHot("warm") || tier.IsHot("cold") {
		t.Fatal("budget exceeded")
	}
}

func TestRebalancePacksWithinBudget(t *testing.T) {
	tier := New(130)
	tier.Observe("a", 80, 800)
	tier.Observe("b", 50, 400)
	tier.Observe("c", 60, 300)
	tier.Rebalance()
	// a (density 10) + b (8) fit in 130; c (5) does not.
	if !tier.IsHot("a") || !tier.IsHot("b") || tier.IsHot("c") {
		t.Fatalf("placement = a:%v b:%v c:%v", tier.IsHot("a"), tier.IsHot("b"), tier.IsHot("c"))
	}
}

func TestHitRateTracksPlacement(t *testing.T) {
	tier := New(100)
	tier.Observe("hot", 100, 900)
	tier.Observe("cold", 900, 100)
	tier.Rebalance()
	tier.ResetCounters()
	// Replay the same skewed traffic.
	for i := 0; i < 9; i++ {
		tier.Observe("hot", 100, 100)
	}
	tier.Observe("cold", 900, 100)
	if got := tier.HitRate(); got < 0.85 || got > 0.95 {
		t.Fatalf("HitRate = %.2f, want ~0.9", got)
	}
}

func TestHitRateEmpty(t *testing.T) {
	if got := New(10).HitRate(); got != 0 {
		t.Fatalf("HitRate = %v", got)
	}
}

func fleetPlan() FleetPlan {
	return FleetPlan{
		DatasetBytes: 12e15, Replication: 3, DemandGBps: 1500,
		AvgIOBytes: 1310720, HDD: hw.HDD, SSD: hw.SSD, DisksPerNode: 36,
		HDDNodeWatts: 500, SSDNodeWatts: 900,
		HotTrafficShare: 0.80, HotBytesShare: 0.39, // Figure 7, RM1
	}
}

func TestTieredBeatsPureHDD(t *testing.T) {
	// §7.2: an SSD tier holding RM1's hot 39% of bytes absorbs 80% of
	// traffic, shrinking the IOPS-driven HDD over-provisioning enough to
	// cut total storage power.
	p := fleetPlan()
	hddOnly := p.PureHDD()
	tiered, err := p.Tiered()
	if err != nil {
		t.Fatal(err)
	}
	if tiered.TotalWatts >= hddOnly.TotalWatts {
		t.Fatalf("tiered %0.f W not below pure HDD %0.f W", tiered.TotalWatts, hddOnly.TotalWatts)
	}
	if tiered.HDDNodes >= hddOnly.HDDNodes {
		t.Fatal("tier did not shrink the HDD fleet")
	}
}

func TestPureSSDIsCapacityBound(t *testing.T) {
	// Storing the whole dataset on SSD flips to the unfavourable
	// storage-to-throughput direction (§7.2).
	p := fleetPlan()
	ssdOnly := p.PureSSD()
	capNodes := float64(p.DatasetBytes) * 3 / (p.SSD.CapacityTB * 1e12 * 36)
	if ssdOnly.SSDNodes < capNodes*0.99 {
		t.Fatalf("pure SSD fleet %f nodes below capacity floor %f", ssdOnly.SSDNodes, capNodes)
	}
}

func TestTieredSharesValidation(t *testing.T) {
	p := fleetPlan()
	p.HotTrafficShare = 1.5
	if _, err := p.Tiered(); err == nil {
		t.Fatal("invalid share accepted")
	}
}

// Property: the hot set never exceeds the byte budget.
func TestBudgetRespectedProperty(t *testing.T) {
	f := func(sizes []uint16, traffics []uint16, budget uint16) bool {
		tier := New(int64(budget))
		n := len(sizes)
		if len(traffics) < n {
			n = len(traffics)
		}
		for i := 0; i < n; i++ {
			tier.Observe(fmt.Sprintf("k%d", i), int64(sizes[i])+1, int64(traffics[i]))
		}
		tier.Rebalance()
		var used int64
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", i)
			if tier.IsHot(k) {
				used += int64(sizes[i]) + 1
			}
		}
		return used <= int64(budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: growing the budget never shrinks the hot set.
func TestBudgetMonotoneProperty(t *testing.T) {
	f := func(sizes []uint8, budget uint16) bool {
		count := func(b int64) int {
			tier := New(b)
			for i, s := range sizes {
				tier.Observe(fmt.Sprintf("k%d", i), int64(s)+1, int64(i+1))
			}
			return tier.Rebalance()
		}
		return count(int64(budget)) <= count(int64(budget)*2+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
