// Package trainer models the GPU training nodes the DSI pipeline feeds
// (§6): per-model tensor ingestion demand (Table 8), the host-resource
// cost of data loading (Figure 8), the pre-DPP baseline that preprocesses
// on trainer CPUs and stalls the GPUs (Table 7), and a live trainer that
// consumes batches from a DPP client while measuring data stalls.
package trainer

import (
	"fmt"
	"runtime"
	"time"

	"dsi/internal/dpp"
	"dsi/internal/hw"
)

// LoadCostParams models the per-byte host cost of loading preprocessed
// tensors (no extraction or transformation): the network stack, memory
// management, and the "datacenter tax" of TLS decryption and Thrift
// deserialization (§6.2).
type LoadCostParams struct {
	// CyclesPerByte is host CPU per loaded tensor byte.
	CyclesPerByte float64
	// MemBytesPerByte is memory traffic per loaded byte (TLS + copies
	// through the host to device memory).
	MemBytesPerByte float64
}

// DefaultLoadCosts reproduces Figure 8's operating points: at RM1's
// 16.5 GB/s a 2-socket trainer spends ≈40% of CPU cycles and ≈55% of
// memory bandwidth just loading data.
func DefaultLoadCosts() LoadCostParams {
	return LoadCostParams{CyclesPerByte: 3.4, MemBytesPerByte: 8.5}
}

// LoadUtilization computes front-end host utilization at a given tensor
// loading rate (the Figure 8 sweep). Utilizations are clamped to 1.
func LoadUtilization(node hw.TrainerSpec, ghz float64, loadGBps float64, costs LoadCostParams) (cpuUtil, memUtil, nicUtil float64) {
	cores := float64(node.CPUSockets * node.CoresPerSock)
	cpuUtil = clamp01(loadGBps * 1e9 * costs.CyclesPerByte / (ghz * 1e9 * cores))
	memUtil = clamp01(loadGBps * 1e9 * costs.MemBytesPerByte / (node.PeakMemBWGBps * 1e9))
	nicUtil = clamp01(loadGBps * 8 / node.FrontendNICGbps)
	return cpuUtil, memUtil, nicUtil
}

// MaxLoadableGBps reports the loading rate at which the first host
// resource saturates; memory bandwidth is considered saturated at
// hw.SaturationThreshold (§6.2).
func MaxLoadableGBps(node hw.TrainerSpec, ghz float64, costs LoadCostParams) float64 {
	cores := float64(node.CPUSockets * node.CoresPerSock)
	cpuCap := ghz * 1e9 * cores / costs.CyclesPerByte / 1e9
	memCap := node.PeakMemBWGBps * hw.SaturationThreshold / costs.MemBytesPerByte
	nicCap := node.FrontendNICGbps / 8
	return minf(cpuCap, minf(memCap, nicCap))
}

// HostPreprocessConfig describes the pre-DPP architecture (Table 7): the
// trainer's own CPUs extract and transform raw data while the GPUs
// train.
type HostPreprocessConfig struct {
	Node hw.TrainerSpec
	GHz  float64
	// DemandGBps is the GPUs' tensor ingestion demand (Table 8).
	DemandGBps float64
	// PreprocCyclesPerByte is host CPU per output tensor byte for
	// extract+transform (far above loading-only costs).
	PreprocCyclesPerByte float64
	// PreprocMemBytesPerByte is memory traffic per output tensor byte.
	PreprocMemBytesPerByte float64
	// RawAmplification is raw-bytes-read per tensor byte produced
	// (§6.3: extraction reads 1.18-3.64x more than it emits).
	RawAmplification float64
}

// StallReport is the Table 7 measurement.
type StallReport struct {
	// GPUStallPct is the percentage of GPU time spent waiting for data.
	GPUStallPct float64
	// CPUUtilPct is host CPU utilization.
	CPUUtilPct float64
	// MemBWUtilPct is host memory bandwidth utilization.
	MemBWUtilPct float64
	// SupplyGBps is the achievable preprocessing throughput.
	SupplyGBps float64
	// NICUtilPct is frontend NIC utilization (raw ingest).
	NICUtilPct float64
}

// Evaluate computes the steady-state stall behaviour: supply is the rate
// at which host resources can produce tensors; the GPUs stall for
// whatever fraction of demand is unmet.
func (c HostPreprocessConfig) Evaluate() (StallReport, error) {
	if c.DemandGBps <= 0 {
		return StallReport{}, fmt.Errorf("trainer: demand must be positive")
	}
	cores := float64(c.Node.CPUSockets * c.Node.CoresPerSock)
	cpuCapGBps := c.GHz * 1e9 * cores / c.PreprocCyclesPerByte / 1e9
	memCapGBps := c.Node.PeakMemBWGBps * hw.SaturationThreshold / c.PreprocMemBytesPerByte
	nicCapGBps := c.Node.FrontendNICGbps / 8 / c.RawAmplification

	supply := minf(cpuCapGBps, minf(memCapGBps, nicCapGBps))
	served := minf(supply, c.DemandGBps)
	rep := StallReport{
		GPUStallPct:  100 * (1 - served/c.DemandGBps),
		CPUUtilPct:   100 * clamp01(served*c.PreprocCyclesPerByte*1e9/(c.GHz*1e9*cores)),
		MemBWUtilPct: 100 * clamp01(served*c.PreprocMemBytesPerByte/c.Node.PeakMemBWGBps),
		NICUtilPct:   100 * clamp01(served*c.RawAmplification*8/c.Node.FrontendNICGbps),
		SupplyGBps:   supply,
	}
	return rep, nil
}

// Trainer consumes preprocessed batches from a DPP client, simulating a
// GPU training loop and counting data stalls.
type Trainer struct {
	Client *dpp.Client
	// StepTime is the simulated GPU compute time per step; the trainer
	// sleeps this long after each consumed batch.
	StepTime time.Duration
	// StallPoll is how long a stalled step waits before retrying. Zero
	// yields the processor without a timed sleep: on a loaded host,
	// timed sleeps can stretch far past their nominal duration and park
	// the trainer long enough to mask real supply shortfalls, so
	// stall-rate measurements that must not depend on timer behaviour
	// poll with bare yields instead.
	StallPoll time.Duration

	StepsDone    int
	StallPolls   int
	RowsConsumed int64
	BytesLoaded  int64
}

// NewTrainer wraps a DPP client.
func NewTrainer(client *dpp.Client) *Trainer {
	return &Trainer{Client: client, StallPoll: 200 * time.Microsecond}
}

// Run trains until the session's data is exhausted or maxSteps batches
// are consumed (0 = unlimited). It returns the observed stall fraction:
// stalled polls over total polls.
func (t *Trainer) Run(maxSteps int) (float64, error) {
	for maxSteps == 0 || t.StepsDone < maxSteps {
		b, ok, done, err := t.Client.TryNext()
		if err != nil {
			return t.stallFraction(), err
		}
		if done {
			break
		}
		if !ok {
			t.StallPolls++
			if t.StallPoll > 0 {
				time.Sleep(t.StallPoll)
			} else {
				runtime.Gosched()
			}
			continue
		}
		t.StepsDone++
		t.RowsConsumed += int64(b.Rows)
		t.BytesLoaded += b.SizeBytes()
		// The simulated step is done with the tensors; recycle them into
		// the wire codec's pools (no-op for non-streamed batches).
		b.Release()
		if t.StepTime > 0 {
			time.Sleep(t.StepTime)
		}
	}
	return t.stallFraction(), nil
}

func (t *Trainer) stallFraction() float64 {
	total := t.StepsDone + t.StallPolls
	if total == 0 {
		return 0
	}
	return float64(t.StallPolls) / float64(total)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
