package trainer

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dsi/internal/datagen"
	"dsi/internal/dpp"
	"dsi/internal/dwrf"
	"dsi/internal/hw"
	"dsi/internal/schema"
	"dsi/internal/tectonic"
	"dsi/internal/transforms"
	"dsi/internal/warehouse"
)

func TestLoadUtilizationFig8OperatingPoint(t *testing.T) {
	// Figure 8: at RM1's 16.5 GB/s on the 2-socket V100 node, loading
	// costs ≈40% CPU and ≈55% memory bandwidth.
	cpu, mem, nic := LoadUtilization(hw.V100Trainer, 2.5, datagen.RM1.TrainerGBps, DefaultLoadCosts())
	if math.Abs(cpu-0.40) > 0.05 {
		t.Fatalf("CPU util = %.2f, want ≈0.40", cpu)
	}
	if math.Abs(mem-0.55) > 0.06 {
		t.Fatalf("mem util = %.2f, want ≈0.55", mem)
	}
	// RM1 approaches NIC saturation (16.5 GB/s of 25 GB/s wire).
	if nic < 0.5 || nic > 1 {
		t.Fatalf("nic util = %.2f", nic)
	}
}

func TestLoadUtilizationMonotoneInRate(t *testing.T) {
	var prevCPU, prevMem float64
	for rate := 1.0; rate <= 20; rate += 1 {
		cpu, mem, _ := LoadUtilization(hw.V100Trainer, 2.5, rate, DefaultLoadCosts())
		if cpu < prevCPU || mem < prevMem {
			t.Fatalf("utilization decreased at %v GB/s", rate)
		}
		prevCPU, prevMem = cpu, mem
	}
}

func TestLoadUtilizationOrderingAcrossRMs(t *testing.T) {
	// RM1 demands the most loading resources, RM2 the least (Table 8).
	util := func(p datagen.Profile) float64 {
		cpu, _, _ := LoadUtilization(hw.V100Trainer, 2.5, p.TrainerGBps, DefaultLoadCosts())
		return cpu
	}
	if !(util(datagen.RM1) > util(datagen.RM3) && util(datagen.RM3) > util(datagen.RM2)) {
		t.Fatal("per-model loading cost ordering should follow Table 8 demand")
	}
}

func TestMaxLoadableGBps(t *testing.T) {
	capGBps := MaxLoadableGBps(hw.V100Trainer, 2.5, DefaultLoadCosts())
	if capGBps <= 0 {
		t.Fatal("no capacity")
	}
	// All RMs' demands must be loadable on the V100 node with DPP
	// offload (the paper provisions hosts exactly so the GPUs stay fed).
	for _, p := range datagen.Profiles() {
		if p.TrainerGBps > capGBps*1.05 {
			t.Fatalf("%s demand %.1f exceeds loadable capacity %.1f", p.Name, p.TrainerGBps, capGBps)
		}
	}
}

func TestHostPreprocessingStallsTable7(t *testing.T) {
	// Table 7: preprocessing RM1 on the trainer's own CPUs stalls the
	// GPUs ~56% of the time at ~92% CPU and ~54% memory BW utilization.
	cfg := HostPreprocessConfig{
		Node:                   hw.V100Trainer,
		GHz:                    2.5,
		DemandGBps:             datagen.RM1.TrainerGBps,
		PreprocCyclesPerByte:   17.8,
		PreprocMemBytesPerByte: 19.0,
		RawAmplification:       2.0,
	}
	rep, err := cfg.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.GPUStallPct-56) > 8 {
		t.Fatalf("stall = %.1f%%, want ≈56%%", rep.GPUStallPct)
	}
	if math.Abs(rep.CPUUtilPct-92) > 10 {
		t.Fatalf("CPU = %.1f%%, want ≈92%%", rep.CPUUtilPct)
	}
	if math.Abs(rep.MemBWUtilPct-54) > 10 {
		t.Fatalf("memBW = %.1f%%, want ≈54%%", rep.MemBWUtilPct)
	}
}

func TestHostPreprocessingNoStallWhenCheap(t *testing.T) {
	cfg := HostPreprocessConfig{
		Node: hw.V100Trainer, GHz: 2.5, DemandGBps: 1,
		PreprocCyclesPerByte: 1, PreprocMemBytesPerByte: 1, RawAmplification: 1,
	}
	rep, err := cfg.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUStallPct != 0 {
		t.Fatalf("stall = %.1f%%, want 0", rep.GPUStallPct)
	}
}

func TestHostPreprocessingRejectsZeroDemand(t *testing.T) {
	cfg := HostPreprocessConfig{Node: hw.V100Trainer}
	if _, err := cfg.Evaluate(); err == nil {
		t.Fatal("zero demand accepted")
	}
}

// buildSession creates a small live DPP session for trainer integration
// tests.
func buildSession(t *testing.T, workers int) (*dpp.Client, []*dpp.Worker) {
	t.Helper()
	cluster, err := tectonic.NewCluster(tectonic.Options{Nodes: 3, Replication: 1, ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	wh := warehouse.New(cluster)
	ts := schema.NewTableSchema("t")
	if err := ts.AddColumn(schema.Column{ID: 1, Kind: schema.Dense, Name: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := ts.AddColumn(schema.Column{ID: 2, Kind: schema.Sparse, Name: "s"}); err != nil {
		t.Fatal(err)
	}
	tbl, err := wh.CreateTable("t", ts, dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pw, err := tbl.NewPartition("p")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		s := schema.NewSample()
		s.DenseFeatures[1] = rng.Float32()
		s.SparseFeatures[2] = []int64{rng.Int63n(100), rng.Int63n(100)}
		if err := pw.WriteRow(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	spec := dpp.SessionSpec{
		Table:     "t",
		Features:  []schema.FeatureID{1, 2},
		Ops:       []transforms.Op{&transforms.SigridHash{In: 2, Out: 100, Salt: 1, MaxValue: 1 << 10}},
		DenseOut:  []schema.FeatureID{1},
		SparseOut: []schema.FeatureID{100},
		BatchSize: 8,
	}
	m, err := dpp.NewMaster(wh, spec)
	if err != nil {
		t.Fatal(err)
	}
	var ws []*dpp.Worker
	var apis []dpp.WorkerAPI
	for i := 0; i < workers; i++ {
		w, err := dpp.NewWorker(fmt.Sprintf("w%d", i), m, wh)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
		apis = append(apis, dpp.LocalWorkerAPI(w))
	}
	client, err := dpp.NewClient(apis, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return client, ws
}

func TestTrainerConsumesAllData(t *testing.T) {
	client, workers := buildSession(t, 2)
	for _, w := range workers {
		go func(w *dpp.Worker) {
			if err := w.Run(nil); err != nil {
				t.Error(err)
			}
		}(w)
	}
	tr := NewTrainer(client)
	stall, err := tr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RowsConsumed != 128 {
		t.Fatalf("consumed %d rows, want 128", tr.RowsConsumed)
	}
	if tr.BytesLoaded <= 0 {
		t.Fatal("no bytes loaded")
	}
	if stall < 0 || stall > 1 {
		t.Fatalf("stall fraction = %v", stall)
	}
}

func TestTrainerObservesStallsWithSlowSupply(t *testing.T) {
	// One worker that hasn't started yet: the first polls must stall.
	client, workers := buildSession(t, 1)
	tr := NewTrainer(client)
	// Poll a few times before the worker runs: all stalls.
	for i := 0; i < 3; i++ {
		_, ok, done, err := client.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		if ok || done {
			t.Fatal("data appeared before worker ran")
		}
		tr.StallPolls++
	}
	go func() {
		if err := workers[0].Run(nil); err != nil {
			t.Error(err)
		}
	}()
	if _, err := tr.Run(0); err != nil {
		t.Fatal(err)
	}
	if tr.StallPolls < 3 {
		t.Fatalf("StallPolls = %d, want >= 3", tr.StallPolls)
	}
	if tr.RowsConsumed != 128 {
		t.Fatalf("consumed %d rows", tr.RowsConsumed)
	}
}

func TestTrainerMaxSteps(t *testing.T) {
	client, workers := buildSession(t, 1)
	go func() {
		if err := workers[0].Run(nil); err != nil {
			t.Error(err)
		}
	}()
	tr := NewTrainer(client)
	if _, err := tr.Run(3); err != nil {
		t.Fatal(err)
	}
	if tr.StepsDone != 3 {
		t.Fatalf("StepsDone = %d, want 3", tr.StepsDone)
	}
}
