package transforms

import (
	"fmt"
	"hash/fnv"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// Stats accounts the resources a graph execution consumed, by op class.
// Cycles and memory traffic come from each op's cost model applied to the
// values it actually processed; feeding Figure 9's utilization breakdown.
type Stats struct {
	ValuesByClass map[Class]int64
	CyclesByClass map[Class]float64
	MemBytes      float64
	OpsRun        int
	RowsIn        int
	RowsOut       int
}

// TotalCycles sums cycles across classes.
func (s Stats) TotalCycles() float64 {
	var total float64
	for _, c := range s.CyclesByClass {
		total += c
	}
	return total
}

// ClassShare reports class c's share of total cycles, in [0,1].
func (s Stats) ClassShare(c Class) float64 {
	total := s.TotalCycles()
	if total == 0 {
		return 0
	}
	return s.CyclesByClass[c] / total
}

// merge accumulates other into s.
func (s *Stats) merge(other Stats) {
	for c, v := range other.ValuesByClass {
		s.ValuesByClass[c] += v
	}
	for c, v := range other.CyclesByClass {
		s.CyclesByClass[c] += v
	}
	s.MemBytes += other.MemBytes
	s.OpsRun += other.OpsRun
}

func newStats() Stats {
	return Stats{
		ValuesByClass: make(map[Class]int64),
		CyclesByClass: make(map[Class]float64),
	}
}

// Graph is a DAG of transformation ops. A single derived feature may
// require a chain of multiple ops (§7.2's example: Bucketize(A),
// FirstX(B), NGram of the intermediates, SigridHash the result).
type Graph struct {
	ops []Op
	// sorted is the topologically ordered execution plan, built by
	// Compile.
	sorted []Op
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Add appends an op to the graph. Ops may be added in any order; Compile
// establishes execution order.
func (g *Graph) Add(ops ...Op) *Graph {
	g.ops = append(g.ops, ops...)
	g.sorted = nil
	return g
}

// Ops returns the ops in insertion order.
func (g *Graph) Ops() []Op { return g.ops }

// Compile validates the graph and builds the execution order:
//   - at most one producer per output feature,
//   - no dependency cycles,
//   - row ops (Sampling) run first.
//
// Inputs with no producer are assumed to come from the batch (raw
// features). CompilePlan lowers the compiled order further into the
// slot-indexed execution Plan the DPP worker's hot path runs (see
// plan.go); Run interprets it.
func (g *Graph) Compile() error {
	producers := make(map[schema.FeatureID]Op)
	for _, op := range g.ops {
		out := op.Output()
		if op.Class() == RowOp {
			continue
		}
		if prev, ok := producers[out]; ok {
			return fmt.Errorf("transforms: feature %d produced by both %s and %s", out, prev.Name(), op.Name())
		}
		producers[out] = op
	}

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[schema.FeatureID]int)
	var order []Op
	var visit func(op Op) error
	visit = func(op Op) error {
		out := op.Output()
		switch state[out] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("transforms: dependency cycle through feature %d (%s)", out, op.Name())
		}
		state[out] = visiting
		for _, in := range op.Inputs() {
			if dep, ok := producers[in]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[out] = done
		order = append(order, op)
		return nil
	}

	var rowOps []Op
	for _, op := range g.ops {
		if op.Class() == RowOp {
			rowOps = append(rowOps, op)
		}
	}
	for _, op := range g.ops {
		if op.Class() == RowOp {
			continue
		}
		if err := visit(op); err != nil {
			return err
		}
	}
	g.sorted = append(rowOps, order...)
	return nil
}

// Run executes the graph on the batch, compiling first if needed.
func (g *Graph) Run(b *dwrf.Batch) (Stats, error) {
	if g.sorted == nil {
		if err := g.Compile(); err != nil {
			return Stats{}, err
		}
	}
	stats := newStats()
	stats.RowsIn = b.Rows
	// The interpreter's reference ops operate on plain value slices;
	// dictionary-indexed columns from the v2 reader are expanded up
	// front. The compiled Plan path keeps dicts and exploits them.
	b.MaterializeDicts()
	for _, op := range g.sorted {
		values, err := op.Apply(b)
		if err != nil {
			return stats, fmt.Errorf("transforms: %s: %w", op.Name(), err)
		}
		cost := op.Cost()
		cls := op.Class()
		stats.ValuesByClass[cls] += values
		stats.CyclesByClass[cls] += float64(values) * cost.CyclesPerValue
		stats.MemBytes += float64(values) * cost.MemBytesPerValue
		stats.OpsRun++
	}
	stats.RowsOut = b.Rows
	return stats, nil
}

// Fingerprint digests the graph's execution order and every op's full
// configuration into a stable hex string: two graphs that perform the
// same preprocessing fingerprint equally, across processes and runs.
// Each op contributes its concrete type and its %+v rendering (fmt
// prints map fields in sorted key order, so MapId and friends are
// deterministic). The execution order is compiled first when needed; a
// graph that fails to compile is digested in insertion order, which is
// still stable for any graph that round-trips through a session spec.
func (g *Graph) Fingerprint() string {
	ops := g.sorted
	if ops == nil {
		if err := g.Compile(); err == nil {
			ops = g.sorted
		} else {
			ops = g.ops
		}
	}
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintf(h, "%T|%+v;", op, op)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// OutputFeatures lists the features the graph produces, in execution
// order (requires Compile).
func (g *Graph) OutputFeatures() []schema.FeatureID {
	var out []schema.FeatureID
	for _, op := range g.sorted {
		if op.Class() != RowOp {
			out = append(out, op.Output())
		}
	}
	return out
}

// StandardGraph assembles a representative per-model transform DAG over
// the projected raw features: dense features get normalization chains,
// sparse features get SigridHash(+FirstX), and derivedCount synthetic
// features are generated through multi-op chains (Bucketize → NGram →
// SigridHash and Cartesian crosses), mirroring §7.2's example DAG.
//
// Derived feature IDs are allocated from derivedBase upward; derivedBase
// must exceed every raw feature ID.
func StandardGraph(dense, sparse []schema.FeatureID, derivedCount int, derivedBase schema.FeatureID) *Graph {
	return StandardGraphTruncated(dense, sparse, derivedCount, derivedBase, 50)
}

// StandardGraphTruncated is StandardGraph with an explicit FirstX list
// cap: models differ heavily in how hard they truncate (RM3's tiny
// tensors come from aggressive truncation).
func StandardGraphTruncated(dense, sparse []schema.FeatureID, derivedCount int, derivedBase schema.FeatureID, firstX int) *Graph {
	g := NewGraph()
	next := derivedBase

	alloc := func() schema.FeatureID {
		id := next
		next++
		return id
	}

	for _, id := range dense {
		switch id % 4 {
		case 0:
			g.Add(&Logit{In: id, Out: alloc()})
		case 1:
			g.Add(&BoxCox{In: id, Out: alloc(), Lambda: 0.5})
		case 2:
			g.Add(&Clamp{In: id, Out: alloc(), Lo: -3, Hi: 3})
		default:
			g.Add(&Onehot{In: id, Out: alloc(), Buckets: 16, Min: -3, Max: 3})
		}
	}
	hashed := make([]schema.FeatureID, 0, len(sparse))
	for _, id := range sparse {
		trunc := alloc()
		g.Add(&FirstX{In: id, Out: trunc, X: firstX})
		h := alloc()
		g.Add(&SigridHash{In: trunc, Out: h, Salt: int64(id), MaxValue: 1 << 20})
		hashed = append(hashed, h)
	}

	for i := 0; i < derivedCount; i++ {
		switch {
		case len(hashed) >= 2 && i%3 == 0:
			a := hashed[i%len(hashed)]
			b := hashed[(i+1)%len(hashed)]
			cross := alloc()
			g.Add(&Cartesian{A: a, B: b, Out: cross, MaxOutput: 8})
			g.Add(&SigridHash{In: cross, Out: alloc(), Salt: int64(i), MaxValue: 1 << 20})
		case len(hashed) >= 1 && i%3 == 1:
			gram := alloc()
			g.Add(&NGram{In: hashed[i%len(hashed)], Out: gram, N: 2})
			g.Add(&PositiveModulus{In: gram, Out: alloc(), M: 1 << 20})
		case len(dense) >= 1:
			bkt := alloc()
			g.Add(&Bucketize{In: dense[i%len(dense)], Out: bkt, Borders: []float32{-2, -1, 0, 1, 2}})
			g.Add(&MapId{In: bkt, Out: alloc(), Mapping: map[int64]int64{0: 100, 5: 105}, Default: 50})
		case len(hashed) >= 1:
			g.Add(&ComputeScore{In: hashed[i%len(hashed)], Out: alloc(), ScaleA: 1, BiasB: 0})
		}
	}
	return g
}
