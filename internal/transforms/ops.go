// Package transforms implements the online preprocessing transformations
// of Table 11: the sixteen production DLRM operations, grouped into the
// paper's three classes (dense normalization, sparse normalization, and
// feature generation), plus the DAG executor that chains them per feature
// (§6.4, §7.2).
//
// Ops run for real on columnar batches (dwrf.Batch). Alongside the actual
// computation, each op carries a cost model — cycles and memory traffic
// per value — calibrated so that the class-level cycle split matches the
// paper's ≈5% dense-norm / 20% sparse-norm / 75% feature-generation
// breakdown, and an accelerator speedup factor from §7.2's GPU
// measurements.
package transforms

import (
	"fmt"
	"hash/fnv"
	"math"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// Class is the paper's transformation taxonomy (§6.4).
type Class int

const (
	// DenseNorm normalizes continuous features (Logit, BoxCox, Onehot,
	// Clamp); ≈5% of transform cycles.
	DenseNorm Class = iota
	// SparseNorm normalizes categorical lists (SigridHash, FirstX);
	// ≈20% of transform cycles.
	SparseNorm
	// FeatureGen derives new features from raw ones (Bucketize, NGram,
	// MapId, Cartesian, ...); ≈75% of transform cycles.
	FeatureGen
	// RowOp operates on whole rows (Sampling).
	RowOp
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case DenseNorm:
		return "dense-norm"
	case SparseNorm:
		return "sparse-norm"
	case FeatureGen:
		return "feature-gen"
	case RowOp:
		return "row-op"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// CostModel describes an op's resource intensity.
type CostModel struct {
	// CyclesPerValue is the CPU cost per input value processed.
	CyclesPerValue float64
	// MemBytesPerValue is memory traffic per input value (reads+writes),
	// feeding the §6.3 memory-bandwidth analysis.
	MemBytesPerValue float64
	// AccelSpeedup is the measured GPU:CPU throughput ratio from §7.2
	// (e.g. 11.9 for SigridHash, 1.3 for Bucketize); 1 means no benefit.
	AccelSpeedup float64
}

// Op is one transformation node. Apply mutates the batch in place,
// producing the Output feature, and returns the number of input values
// processed (the basis for cost accounting).
type Op interface {
	Name() string
	Class() Class
	Inputs() []schema.FeatureID
	Output() schema.FeatureID
	Cost() CostModel
	Apply(b *dwrf.Batch) (values int64, err error)
}

// --- column helpers ------------------------------------------------------

// denseInput fetches a dense column, treating a missing column as
// all-absent (coverage < 1 means stripes may lack a feature entirely).
func denseInput(b *dwrf.Batch, id schema.FeatureID) *dwrf.DenseColumn {
	if c, ok := b.Dense[id]; ok {
		return c
	}
	return &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
}

func sparseInput(b *dwrf.Batch, id schema.FeatureID) *dwrf.SparseColumn {
	if c, ok := b.Sparse[id]; ok {
		return c
	}
	return &dwrf.SparseColumn{Offsets: make([]int32, b.Rows+1)}
}

// buildSparse assembles a ragged column from per-row value slices.
func buildSparse(rows int, perRow func(i int) []int64) *dwrf.SparseColumn {
	col := &dwrf.SparseColumn{Offsets: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		col.Offsets[i] = int32(len(col.Values))
		col.Values = append(col.Values, perRow(i)...)
	}
	col.Offsets[rows] = int32(len(col.Values))
	return col
}

// hash64 hashes a byte-free pair of ints (used by Cartesian/NGram).
func hash64(parts ...int64) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		h.Write(buf[:])
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// --- dense normalization ops ---------------------------------------------

// Logit applies the logit transform log(p/(1-p)) for normalization.
type Logit struct {
	In, Out schema.FeatureID
	// Eps clamps inputs into (Eps, 1-Eps) before the transform.
	Eps float32
}

// Name implements Op.
func (o *Logit) Name() string { return "Logit" }

// Class implements Op.
func (o *Logit) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Logit) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Logit) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Logit) Cost() CostModel {
	return CostModel{CyclesPerValue: 24, MemBytesPerValue: 8, AccelSpeedup: 4}
}

// Apply implements Op.
func (o *Logit) Apply(b *dwrf.Batch) (int64, error) {
	in := denseInput(b, o.In)
	eps := o.Eps
	if eps <= 0 {
		eps = 1e-6
	}
	out := &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
	for i := 0; i < b.Rows; i++ {
		if !in.Present[i] {
			continue
		}
		p := in.Values[i]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		out.Present[i] = true
		out.Values[i] = float32(math.Log(float64(p) / float64(1-p)))
	}
	b.Dense[o.Out] = out
	return int64(b.Rows), nil
}

// BoxCox applies the Box-Cox power transform for normalization.
type BoxCox struct {
	In, Out schema.FeatureID
	Lambda  float64
}

// Name implements Op.
func (o *BoxCox) Name() string { return "BoxCox" }

// Class implements Op.
func (o *BoxCox) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *BoxCox) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *BoxCox) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *BoxCox) Cost() CostModel {
	return CostModel{CyclesPerValue: 40, MemBytesPerValue: 8, AccelSpeedup: 5}
}

// Apply implements Op.
func (o *BoxCox) Apply(b *dwrf.Batch) (int64, error) {
	in := denseInput(b, o.In)
	out := &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
	for i := 0; i < b.Rows; i++ {
		if !in.Present[i] {
			continue
		}
		x := float64(in.Values[i])
		if x <= 0 {
			x = 1e-9
		}
		out.Present[i] = true
		if o.Lambda == 0 {
			out.Values[i] = float32(math.Log(x))
		} else {
			out.Values[i] = float32((math.Pow(x, o.Lambda) - 1) / o.Lambda)
		}
	}
	b.Dense[o.Out] = out
	return int64(b.Rows), nil
}

// Onehot encodes a dense feature into a categorical bucket index.
type Onehot struct {
	In, Out schema.FeatureID
	Buckets int
	Min     float32
	Max     float32
}

// Name implements Op.
func (o *Onehot) Name() string { return "Onehot" }

// Class implements Op.
func (o *Onehot) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Onehot) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Onehot) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Onehot) Cost() CostModel {
	return CostModel{CyclesPerValue: 16, MemBytesPerValue: 12, AccelSpeedup: 6}
}

// Apply implements Op.
func (o *Onehot) Apply(b *dwrf.Batch) (int64, error) {
	if o.Buckets <= 0 {
		return 0, fmt.Errorf("transforms: Onehot needs positive bucket count")
	}
	in := denseInput(b, o.In)
	span := o.Max - o.Min
	if span <= 0 {
		span = 1
	}
	col := buildSparse(b.Rows, func(i int) []int64 {
		if !in.Present[i] {
			return nil
		}
		f := (in.Values[i] - o.Min) / span
		idx := int64(f * float32(o.Buckets))
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(o.Buckets) {
			idx = int64(o.Buckets) - 1
		}
		return []int64{idx}
	})
	b.Sparse[o.Out] = col
	return int64(b.Rows), nil
}

// Clamp bounds a dense feature into [Lo, Hi], as std::clamp.
type Clamp struct {
	In, Out schema.FeatureID
	Lo, Hi  float32
}

// Name implements Op.
func (o *Clamp) Name() string { return "Clamp" }

// Class implements Op.
func (o *Clamp) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Clamp) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Clamp) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Clamp) Cost() CostModel {
	return CostModel{CyclesPerValue: 6, MemBytesPerValue: 8, AccelSpeedup: 3}
}

// Apply implements Op.
func (o *Clamp) Apply(b *dwrf.Batch) (int64, error) {
	if o.Lo > o.Hi {
		return 0, fmt.Errorf("transforms: Clamp lo %v > hi %v", o.Lo, o.Hi)
	}
	in := denseInput(b, o.In)
	out := &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
	for i := 0; i < b.Rows; i++ {
		if !in.Present[i] {
			continue
		}
		v := in.Values[i]
		if v < o.Lo {
			v = o.Lo
		}
		if v > o.Hi {
			v = o.Hi
		}
		out.Present[i] = true
		out.Values[i] = v
	}
	b.Dense[o.Out] = out
	return int64(b.Rows), nil
}

// GetLocalHour converts a unix-seconds dense feature into the local hour
// of day given a fixed UTC offset.
type GetLocalHour struct {
	In, Out       schema.FeatureID
	OffsetMinutes int
}

// Name implements Op.
func (o *GetLocalHour) Name() string { return "GetLocalHour" }

// Class implements Op.
func (o *GetLocalHour) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *GetLocalHour) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *GetLocalHour) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *GetLocalHour) Cost() CostModel {
	return CostModel{CyclesPerValue: 30, MemBytesPerValue: 8, AccelSpeedup: 2}
}

// Apply implements Op.
func (o *GetLocalHour) Apply(b *dwrf.Batch) (int64, error) {
	in := denseInput(b, o.In)
	out := &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
	for i := 0; i < b.Rows; i++ {
		if !in.Present[i] {
			continue
		}
		secs := int64(in.Values[i]) + int64(o.OffsetMinutes)*60
		hour := (secs / 3600) % 24
		if hour < 0 {
			hour += 24
		}
		out.Present[i] = true
		out.Values[i] = float32(hour)
	}
	b.Dense[o.Out] = out
	return int64(b.Rows), nil
}
