// Package transforms implements the online preprocessing transformations
// of Table 11: the sixteen production DLRM operations, grouped into the
// paper's three classes (dense normalization, sparse normalization, and
// feature generation), plus the DAG executor that chains them per feature
// (§6.4, §7.2).
//
// Ops run for real on columnar batches (dwrf.Batch). Alongside the actual
// computation, each op carries a cost model — cycles and memory traffic
// per value — calibrated so that the class-level cycle split matches the
// paper's ≈5% dense-norm / 20% sparse-norm / 75% feature-generation
// breakdown, and an accelerator speedup factor from §7.2's GPU
// measurements.
//
// The graph executes two ways: Graph.Run interprets the ops (each Apply
// resolves features through the batch maps and allocates fresh output
// columns — the measurable baseline), while Graph.CompilePlan lowers
// the DAG into a slot-indexed Plan whose kernels walk flat slot arrays
// and write into dwrf.Arena-recycled columns (see plan.go). The two
// paths are byte-identical by construction: the per-value math lives in
// kernels shared between Apply and the Plan, pinned by the parity suite
// in plan_test.go. Ops must never retain column slices across batches —
// arena-backed batches recycle their buffers on Release.
package transforms

import (
	"fmt"
	"math"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// Class is the paper's transformation taxonomy (§6.4).
type Class int

const (
	// DenseNorm normalizes continuous features (Logit, BoxCox, Onehot,
	// Clamp); ≈5% of transform cycles.
	DenseNorm Class = iota
	// SparseNorm normalizes categorical lists (SigridHash, FirstX);
	// ≈20% of transform cycles.
	SparseNorm
	// FeatureGen derives new features from raw ones (Bucketize, NGram,
	// MapId, Cartesian, ...); ≈75% of transform cycles.
	FeatureGen
	// RowOp operates on whole rows (Sampling).
	RowOp
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case DenseNorm:
		return "dense-norm"
	case SparseNorm:
		return "sparse-norm"
	case FeatureGen:
		return "feature-gen"
	case RowOp:
		return "row-op"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// CostModel describes an op's resource intensity.
type CostModel struct {
	// CyclesPerValue is the CPU cost per input value processed.
	CyclesPerValue float64
	// MemBytesPerValue is memory traffic per input value (reads+writes),
	// feeding the §6.3 memory-bandwidth analysis.
	MemBytesPerValue float64
	// AccelSpeedup is the measured GPU:CPU throughput ratio from §7.2
	// (e.g. 11.9 for SigridHash, 1.3 for Bucketize); 1 means no benefit.
	AccelSpeedup float64
}

// Op is one transformation node. Apply mutates the batch in place,
// producing the Output feature, and returns the number of input values
// processed (the basis for cost accounting).
type Op interface {
	Name() string
	Class() Class
	Inputs() []schema.FeatureID
	Output() schema.FeatureID
	Cost() CostModel
	Apply(b *dwrf.Batch) (values int64, err error)
}

// --- column helpers ------------------------------------------------------

// denseInput fetches a dense column, treating a missing column as
// all-absent (coverage < 1 means stripes may lack a feature entirely).
func denseInput(b *dwrf.Batch, id schema.FeatureID) *dwrf.DenseColumn {
	if c, ok := b.Dense[id]; ok {
		return c
	}
	return &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
}

func sparseInput(b *dwrf.Batch, id schema.FeatureID) *dwrf.SparseColumn {
	if c, ok := b.Sparse[id]; ok {
		return c
	}
	return &dwrf.SparseColumn{Offsets: make([]int32, b.Rows+1)}
}

// buildSparse assembles a ragged column from per-row value slices.
func buildSparse(rows int, perRow func(i int) []int64) *dwrf.SparseColumn {
	col := &dwrf.SparseColumn{Offsets: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		col.Offsets[i] = int32(len(col.Values))
		col.Values = append(col.Values, perRow(i)...)
	}
	col.Offsets[rows] = int32(len(col.Values))
	return col
}

// FNV-1a 64-bit parameters (matching hash/fnv).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// mix64 folds one int64 (little-endian bytes) into a running FNV-1a
// state. Exposed separately from hash64 so dictionary-aware kernels can
// pre-mix a hash prefix once per DISTINCT value (Cartesian's left side,
// NGram's window head) and finish per occurrence — the split keeps
// those outputs bit-identical to hash64 over the full argument list.
func mix64(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// finish64 masks a final FNV-1a state into the non-negative int64 ID
// space.
func finish64(h uint64) int64 { return int64(h & 0x7fffffffffffffff) }

// hash64 hashes ints with FNV-1a over their little-endian bytes (used
// by SigridHash/Cartesian/NGram). Inlined rather than hash/fnv because
// the digest object escaped to the heap, making every hashed value an
// allocation in the feature-generation hot loops.
func hash64(parts ...int64) int64 {
	h := fnvOffset64
	for _, p := range parts {
		h = mix64(h, p)
	}
	return finish64(h)
}

// denseMapper is an elementwise dense→dense op: output presence mirrors
// input presence and each present value maps through a scalar kernel.
// The compiled Plan fuses chains of these into a single pass over the
// rows (see plan.go); the interpreter runs them through applyDenseMap.
type denseMapper interface {
	Op
	// mapIn is the single dense input feature.
	mapIn() schema.FeatureID
	// mapValue transforms one present value.
	mapValue(float32) float32
	// validateMap checks the op's configuration.
	validateMap() error
}

// applyDenseMap is the interpreter's executor for denseMapper ops.
func applyDenseMap(b *dwrf.Batch, o denseMapper, out schema.FeatureID) (int64, error) {
	if err := o.validateMap(); err != nil {
		return 0, err
	}
	in := denseInput(b, o.mapIn())
	col := &dwrf.DenseColumn{Present: make([]bool, b.Rows), Values: make([]float32, b.Rows)}
	for i := 0; i < b.Rows; i++ {
		if !in.Present[i] {
			continue
		}
		col.Present[i] = true
		col.Values[i] = o.mapValue(in.Values[i])
	}
	b.Dense[out] = col
	return int64(b.Rows), nil
}

// --- dense normalization ops ---------------------------------------------

// Logit applies the logit transform log(p/(1-p)) for normalization.
type Logit struct {
	In, Out schema.FeatureID
	// Eps clamps inputs into (Eps, 1-Eps) before the transform.
	Eps float32
}

// Name implements Op.
func (o *Logit) Name() string { return "Logit" }

// Class implements Op.
func (o *Logit) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Logit) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Logit) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Logit) Cost() CostModel {
	return CostModel{CyclesPerValue: 24, MemBytesPerValue: 8, AccelSpeedup: 4}
}

// mapValue is the op's scalar kernel, shared by Apply and the compiled
// Plan (which fuses chains of these elementwise maps into one pass).
func (o *Logit) mapValue(p float32) float32 {
	eps := o.Eps
	if eps <= 0 {
		eps = 1e-6
	}
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return float32(math.Log(float64(p) / float64(1-p)))
}

// mapIn implements denseMapper.
func (o *Logit) mapIn() schema.FeatureID { return o.In }

// validateMap implements denseMapper.
func (o *Logit) validateMap() error { return nil }

// Apply implements Op.
func (o *Logit) Apply(b *dwrf.Batch) (int64, error) {
	return applyDenseMap(b, o, o.Out)
}

// BoxCox applies the Box-Cox power transform for normalization.
type BoxCox struct {
	In, Out schema.FeatureID
	Lambda  float64
}

// Name implements Op.
func (o *BoxCox) Name() string { return "BoxCox" }

// Class implements Op.
func (o *BoxCox) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *BoxCox) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *BoxCox) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *BoxCox) Cost() CostModel {
	return CostModel{CyclesPerValue: 40, MemBytesPerValue: 8, AccelSpeedup: 5}
}

// mapValue is the op's scalar kernel, shared by Apply and the compiled
// Plan.
func (o *BoxCox) mapValue(v float32) float32 {
	x := float64(v)
	if x <= 0 {
		x = 1e-9
	}
	if o.Lambda == 0 {
		return float32(math.Log(x))
	}
	return float32((math.Pow(x, o.Lambda) - 1) / o.Lambda)
}

// mapIn implements denseMapper.
func (o *BoxCox) mapIn() schema.FeatureID { return o.In }

// validateMap implements denseMapper.
func (o *BoxCox) validateMap() error { return nil }

// Apply implements Op.
func (o *BoxCox) Apply(b *dwrf.Batch) (int64, error) {
	return applyDenseMap(b, o, o.Out)
}

// Onehot encodes a dense feature into a categorical bucket index.
type Onehot struct {
	In, Out schema.FeatureID
	Buckets int
	Min     float32
	Max     float32
}

// Name implements Op.
func (o *Onehot) Name() string { return "Onehot" }

// Class implements Op.
func (o *Onehot) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Onehot) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Onehot) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Onehot) Cost() CostModel {
	return CostModel{CyclesPerValue: 16, MemBytesPerValue: 12, AccelSpeedup: 6}
}

// bucketIndex is the op's scalar kernel, shared by Apply and the
// compiled Plan.
func (o *Onehot) bucketIndex(v float32) int64 {
	span := o.Max - o.Min
	if span <= 0 {
		span = 1
	}
	f := (v - o.Min) / span
	idx := int64(f * float32(o.Buckets))
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(o.Buckets) {
		idx = int64(o.Buckets) - 1
	}
	return idx
}

// Apply implements Op.
func (o *Onehot) Apply(b *dwrf.Batch) (int64, error) {
	if o.Buckets <= 0 {
		return 0, fmt.Errorf("transforms: Onehot needs positive bucket count")
	}
	in := denseInput(b, o.In)
	col := buildSparse(b.Rows, func(i int) []int64 {
		if !in.Present[i] {
			return nil
		}
		return []int64{o.bucketIndex(in.Values[i])}
	})
	b.Sparse[o.Out] = col
	return int64(b.Rows), nil
}

// Clamp bounds a dense feature into [Lo, Hi], as std::clamp.
type Clamp struct {
	In, Out schema.FeatureID
	Lo, Hi  float32
}

// Name implements Op.
func (o *Clamp) Name() string { return "Clamp" }

// Class implements Op.
func (o *Clamp) Class() Class { return DenseNorm }

// Inputs implements Op.
func (o *Clamp) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Clamp) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Clamp) Cost() CostModel {
	return CostModel{CyclesPerValue: 6, MemBytesPerValue: 8, AccelSpeedup: 3}
}

// mapValue is the op's scalar kernel, shared by Apply and the compiled
// Plan.
func (o *Clamp) mapValue(v float32) float32 {
	if v < o.Lo {
		v = o.Lo
	}
	if v > o.Hi {
		v = o.Hi
	}
	return v
}

// mapIn implements denseMapper.
func (o *Clamp) mapIn() schema.FeatureID { return o.In }

// validateMap implements denseMapper.
func (o *Clamp) validateMap() error {
	if o.Lo > o.Hi {
		return fmt.Errorf("transforms: Clamp lo %v > hi %v", o.Lo, o.Hi)
	}
	return nil
}

// Apply implements Op.
func (o *Clamp) Apply(b *dwrf.Batch) (int64, error) {
	return applyDenseMap(b, o, o.Out)
}

// GetLocalHour converts a unix-seconds dense feature into the local hour
// of day given a fixed UTC offset.
type GetLocalHour struct {
	In, Out       schema.FeatureID
	OffsetMinutes int
}

// Name implements Op.
func (o *GetLocalHour) Name() string { return "GetLocalHour" }

// Class implements Op.
func (o *GetLocalHour) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *GetLocalHour) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *GetLocalHour) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *GetLocalHour) Cost() CostModel {
	return CostModel{CyclesPerValue: 30, MemBytesPerValue: 8, AccelSpeedup: 2}
}

// mapValue is the op's scalar kernel, shared by Apply and the compiled
// Plan.
func (o *GetLocalHour) mapValue(v float32) float32 {
	secs := int64(v) + int64(o.OffsetMinutes)*60
	hour := (secs / 3600) % 24
	if hour < 0 {
		hour += 24
	}
	return float32(hour)
}

// mapIn implements denseMapper.
func (o *GetLocalHour) mapIn() schema.FeatureID { return o.In }

// validateMap implements denseMapper.
func (o *GetLocalHour) validateMap() error { return nil }

// Apply implements Op.
func (o *GetLocalHour) Apply(b *dwrf.Batch) (int64, error) {
	return applyDenseMap(b, o, o.Out)
}
