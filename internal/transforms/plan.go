package transforms

import (
	"fmt"
	"sync"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// This file is the compiled execution engine for the preprocessing
// graph. Graph.Run interprets: every Apply resolves its features
// through the batch's map[FeatureID] columns and allocates fresh output
// columns, so a steady-state DPP worker pays a map hash per op per
// batch and an allocation storm per batch — on the layer where the
// paper says the worker's cycles actually go (Figure 9: transformation
// dominates DPP CPU). Graph.CompilePlan instead lowers the topo-sorted
// ops once per session into a Plan:
//
//   - Every input and output FeatureID is resolved to a dense / sparse
//     / score-list slot index at compile time. Per-batch execution
//     walks flat slot arrays; the only map touches left are one bind
//     per raw input feature and one publish per output feature per
//     batch (not per op per row).
//   - Op configuration is validated at compile time, so kernels run
//     branch-light.
//   - Chains of elementwise dense ops (Logit, BoxCox, Clamp,
//     GetLocalHour — the denseMapper interface) fuse into a single
//     pass over the rows that still materializes every intermediate
//     column, keeping outputs byte-identical to the interpreter.
//   - Output columns come from a dwrf.Arena, sized by the previous
//     batch, so a worker's transform stage recycles the same buffers
//     split after split (the transform-stage analogue of PR 3's wire
//     pools).
//
// Plan.Run produces byte-identical columns and identical Stats to
// Graph.Run (plan_test.go pins this for every op); ops the compiler
// does not recognize make CompilePlan fail, and callers (the DPP
// worker) fall back to the interpreter.

// Plan is a compiled Graph. Compile once per session with
// Graph.CompilePlan; Run is safe for concurrent use (each call checks
// out a pooled execution state), which is how the worker's transform
// pool shares one Plan.
type Plan struct {
	rowOps []Op
	steps  []planStep

	// fingerprint is the stable digest of the compiled op sequence,
	// computed once by CompilePlan (see Graph.Fingerprint).
	fingerprint string

	// Raw features bound from the batch maps into slots once per run.
	rawDense  []slotBind
	rawSparse []slotBind

	// Slot counts per column kind.
	nDense, nSparse, nScore int

	// Outputs published from slots back into the batch maps after the
	// steps run.
	pubDense  []slotBind
	pubSparse []slotBind
	pubScore  []slotBind

	execs sync.Pool // *planExec
}

// slotBind associates a feature ID with a slot index, for raw-input
// binding and output publishing.
type slotBind struct {
	id   schema.FeatureID
	slot int
}

// planStep is one executable unit: a single op kernel or a fused chain
// of elementwise dense ops.
type planStep struct {
	// op names the step in errors (the first member for fused chains).
	op  Op
	run func(e *planExec) error
}

// fusedDense is a chain of elementwise dense ops executed as one pass:
// member k+1's input is member k's output, so the running value flows
// through the scalar kernels while every intermediate column is still
// materialized.
type fusedDense struct {
	in      int
	members []fusedMember
}

type fusedMember struct {
	op  denseMapper
	out int
}

// Ops reports how many non-row ops the plan executes and Steps how many
// executable steps they lowered into; Steps < Ops means dense chains
// fused.
func (p *Plan) Ops() int {
	n := 0
	for _, s := range p.steps {
		if g, ok := s.fused(); ok {
			n += len(g.members)
		} else {
			n++
		}
	}
	return n + len(p.rowOps)
}

// Steps reports the number of executable steps (fused chains count
// once), plus row ops.
func (p *Plan) Steps() int { return len(p.steps) + len(p.rowOps) }

// fused reports the step's fusion group, if it is one.
func (s *planStep) fused() (*fusedDense, bool) {
	g, ok := s.op.(*fusedStepMarker)
	if !ok {
		return nil, false
	}
	return g.group, true
}

// fusedStepMarker lets a fused step carry its group for introspection
// (Ops/Steps, tests) while keeping planStep uniform. It is never
// executed as an Op.
type fusedStepMarker struct {
	Op
	group *fusedDense
}

// planExec is the per-run execution state: flat slot arrays plus
// reusable scratch. One is checked out of the plan's pool per Run, so
// concurrent runs never share state.
type planExec struct {
	rows   int
	dense  []*dwrf.DenseColumn
	sparse []*dwrf.SparseColumn
	score  []*dwrf.ScoreListColumn

	// Shared all-absent inputs for features missing from the batch
	// (coverage < 1). Kernels only read inputs, so sharing is safe; the
	// backing arrays are only ever zero, so resizing never re-clears.
	emptyDense  dwrf.DenseColumn
	emptySparse dwrf.SparseColumn

	// scratch is IdListTransform's sorted membership buffer.
	scratch []int64

	// matVals/matDone lazily cache, per sparse slot, the materialized
	// values of dictionary-indexed input columns: kernels that need raw
	// values (IdListTransform, the Cartesian/NGram value sides) share
	// one materialization per column per run, while dict-preserving
	// kernels never pay it. The buffers are exec-owned scratch and
	// recycle across runs; matDone is cleared each reset.
	matVals [][]int64
	matDone []bool
	// prefix holds per-distinct-value pre-mixed FNV states for the
	// dictionary-aware Cartesian/NGram kernels; scoreTab the
	// per-distinct scored values of ComputeScore. Rebuilt by each step
	// that uses them, so sequential steps share one buffer.
	prefix   []uint64
	scoreTab []schema.ScoredValue

	arena *dwrf.Arena
	stats *Stats
}

// sparseVals returns a slot's materialized feature values: the column's
// own Values for plain columns (no copy), or an exec-cached
// materialization for dictionary-indexed ones — each dict column
// materializes at most once per run regardless of how many kernels need
// raw values.
func (e *planExec) sparseVals(slot int) []int64 {
	src := e.sparse[slot]
	if !src.IsDict() {
		return src.Values
	}
	if e.matDone[slot] {
		return e.matVals[slot]
	}
	buf := i64Values(e.matVals[slot], len(src.Values))
	for i, idx := range src.Values {
		buf[i] = src.Dict[idx]
	}
	e.matVals[slot] = buf
	e.matDone[slot] = true
	return buf
}

// dictPrefixes fills e.prefix with the pre-mixed FNV state of every
// dictionary entry (the shared first-argument contribution to hash64).
func (e *planExec) dictPrefixes(dict []int64) []uint64 {
	pref := resizeScratch(e.prefix, len(dict))
	for d, v := range dict {
		pref[d] = mix64(fnvOffset64, v)
	}
	e.prefix = pref
	return pref
}

// reset prepares the exec for a run over rows rows.
func (e *planExec) reset(p *Plan, rows int, arena *dwrf.Arena, stats *Stats) {
	e.rows = rows
	e.arena = arena
	e.stats = stats
	e.dense = resizeSlots(e.dense, p.nDense)
	e.sparse = resizeSlots(e.sparse, p.nSparse)
	e.score = resizeSlots(e.score, p.nScore)
	e.matVals = resizeKeep(e.matVals, p.nSparse)
	e.matDone = resizeSlots(e.matDone, p.nSparse)
	e.emptyDense.Present = resizeNeverWritten(e.emptyDense.Present, rows)
	e.emptyDense.Values = resizeNeverWritten(e.emptyDense.Values, rows)
	e.emptySparse.Offsets = resizeNeverWritten(e.emptySparse.Offsets, rows+1)
}

// finish drops column references so a pooled exec never pins batch
// memory between runs.
func (e *planExec) finish() {
	clear(e.dense)
	clear(e.sparse)
	clear(e.score)
	e.arena = nil
	e.stats = nil
}

// resizeSlots returns a zero-cleared slice of n entries (column
// pointers, done flags).
func resizeSlots[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeKeep grows a slice to n entries preserving existing contents —
// used for per-slot scratch buffers that recycle their capacity across
// runs.
func resizeKeep[T any](s []T, n int) []T {
	if cap(s) < n {
		ns := make([]T, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// resizeScratch resizes a fully-overwritten scratch slice without
// clearing.
func resizeScratch[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resizeNeverWritten resizes a slice whose contents are only ever the
// zero value, so no clearing is needed on reuse.
func resizeNeverWritten[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// account folds one executed op into the run's stats, exactly as the
// interpreter does.
func (e *planExec) account(op Op, values int64) {
	cost := op.Cost()
	cls := op.Class()
	e.stats.ValuesByClass[cls] += values
	e.stats.CyclesByClass[cls] += float64(values) * cost.CyclesPerValue
	e.stats.MemBytes += float64(values) * cost.MemBytesPerValue
	e.stats.OpsRun++
}

// newSparse returns an arena-recycled output column; i64Values sizes a
// values slice reusing the recycled capacity.
func (e *planExec) newSparse() *dwrf.SparseColumn { return e.arena.Sparse(e.rows) }

func i64Values(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// CompilePlan lowers the graph into a compiled Plan, compiling the
// execution order first if needed. It fails for op configurations the
// interpreter would reject at Apply time (surfaceing them per session
// instead of per batch) and for Op implementations outside this
// package, which have no compiled kernel — callers fall back to
// Graph.Run.
func (g *Graph) CompilePlan() (*Plan, error) {
	if g.sorted == nil {
		if err := g.Compile(); err != nil {
			return nil, err
		}
	}
	p := &Plan{}
	c := &planCompiler{
		p:           p,
		denseSlots:  make(map[schema.FeatureID]int),
		sparseSlots: make(map[schema.FeatureID]int),
		rawDense:    make(map[schema.FeatureID]int),
		rawSparse:   make(map[schema.FeatureID]int),
	}
	for _, op := range g.sorted {
		if op.Class() == RowOp {
			p.rowOps = append(p.rowOps, op)
			continue
		}
		if err := c.lower(op); err != nil {
			return nil, err
		}
	}
	p.fingerprint = g.Fingerprint()
	return p, nil
}

// Fingerprint returns the plan's stable content digest: equal plans
// (same op sequence, same configuration) fingerprint equally across
// processes, so it can key content-addressed caches of transform
// outputs (ware.WareID). Computed once at compile time.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// planCompiler holds the feature→slot resolution state during lowering.
type planCompiler struct {
	p *Plan
	// denseSlots/sparseSlots map produced features to their output
	// slots; rawDense/rawSparse map raw batch features to their bound
	// slots. Producers always lower before their consumers (topo
	// order), so a feature is raw-bound only if no op produces it.
	denseSlots  map[schema.FeatureID]int
	sparseSlots map[schema.FeatureID]int
	rawDense    map[schema.FeatureID]int
	rawSparse   map[schema.FeatureID]int
	// lastFused is the still-extendable fusion group of the previous
	// step, nil when the previous step is not a dense-map chain.
	lastFused *fusedDense
}

// denseIn resolves a dense input feature to its slot, binding it from
// the batch if no op produces it.
func (c *planCompiler) denseIn(id schema.FeatureID) int {
	if s, ok := c.denseSlots[id]; ok {
		return s
	}
	if s, ok := c.rawDense[id]; ok {
		return s
	}
	s := c.p.nDense
	c.p.nDense++
	c.rawDense[id] = s
	c.p.rawDense = append(c.p.rawDense, slotBind{id, s})
	return s
}

// sparseIn resolves a sparse input feature to its slot.
func (c *planCompiler) sparseIn(id schema.FeatureID) int {
	if s, ok := c.sparseSlots[id]; ok {
		return s
	}
	if s, ok := c.rawSparse[id]; ok {
		return s
	}
	s := c.p.nSparse
	c.p.nSparse++
	c.rawSparse[id] = s
	c.p.rawSparse = append(c.p.rawSparse, slotBind{id, s})
	return s
}

// denseOut allocates the output slot for a produced dense feature.
func (c *planCompiler) denseOut(id schema.FeatureID) int {
	s := c.p.nDense
	c.p.nDense++
	c.denseSlots[id] = s
	c.p.pubDense = append(c.p.pubDense, slotBind{id, s})
	return s
}

// sparseOut allocates the output slot for a produced sparse feature.
func (c *planCompiler) sparseOut(id schema.FeatureID) int {
	s := c.p.nSparse
	c.p.nSparse++
	c.sparseSlots[id] = s
	c.p.pubSparse = append(c.p.pubSparse, slotBind{id, s})
	return s
}

// scoreOut allocates the output slot for a produced score-list feature.
func (c *planCompiler) scoreOut(id schema.FeatureID) int {
	s := c.p.nScore
	c.p.nScore++
	c.p.pubScore = append(c.p.pubScore, slotBind{id, s})
	return s
}

// step appends a non-fusable step and seals any open fusion chain.
func (c *planCompiler) step(op Op, run func(e *planExec) error) {
	c.lastFused = nil
	c.p.steps = append(c.p.steps, planStep{op: op, run: run})
}

// lower compiles one op into a step (or extends the current fused
// chain).
func (c *planCompiler) lower(op Op) error {
	switch o := op.(type) {
	case *Logit:
		return c.lowerDenseMap(o)
	case *BoxCox:
		return c.lowerDenseMap(o)
	case *Clamp:
		return c.lowerDenseMap(o)
	case *GetLocalHour:
		return c.lowerDenseMap(o)
	case *Onehot:
		if o.Buckets <= 0 {
			return fmt.Errorf("transforms: Onehot needs positive bucket count")
		}
		in, out := c.denseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.dense[in]
			dst := e.newSparse()
			for i := 0; i < e.rows; i++ {
				dst.Offsets[i] = int32(len(dst.Values))
				if src.Present[i] {
					dst.Values = append(dst.Values, o.bucketIndex(src.Values[i]))
				}
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, int64(e.rows))
			return nil
		})
	case *Bucketize:
		if err := o.validate(); err != nil {
			return err
		}
		in, out := c.denseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.dense[in]
			dst := e.newSparse()
			for i := 0; i < e.rows; i++ {
				dst.Offsets[i] = int32(len(dst.Values))
				if src.Present[i] {
					dst.Values = append(dst.Values, o.bucketOf(src.Values[i]))
				}
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, int64(e.rows))
			return nil
		})
	case *SigridHash:
		if o.MaxValue <= 0 {
			return fmt.Errorf("transforms: SigridHash needs positive MaxValue")
		}
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			dst.Offsets = append(dst.Offsets[:0], src.Offsets...)
			if src.IsDict() {
				// Hash each DISTINCT value once; the per-occurrence
				// indices carry over unchanged, so the output stays
				// dictionary-indexed.
				dst.Dict = i64Values(dst.Dict, len(src.Dict))
				for d, v := range src.Dict {
					dst.Dict[d] = hash64(v, o.Salt) % o.MaxValue
				}
				dst.Values = append(dst.Values, src.Values...)
			} else {
				dst.Values = i64Values(dst.Values, len(src.Values))
				for i, v := range src.Values {
					dst.Values[i] = hash64(v, o.Salt) % o.MaxValue
				}
			}
			e.sparse[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	case *FirstX:
		if o.X < 0 {
			return fmt.Errorf("transforms: FirstX needs non-negative X")
		}
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			// Truncation works the same in index space, so the loop is
			// representation-agnostic; a dict input just carries its
			// dictionary over (copied — arena columns must not alias).
			for i := 0; i < e.rows; i++ {
				dst.Offsets[i] = int32(len(dst.Values))
				vals := src.RowValues(i)
				if len(vals) > o.X {
					vals = vals[:o.X]
				}
				dst.Values = append(dst.Values, vals...)
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			if src.IsDict() {
				dst.Dict = append(dst.Dict, src.Dict...)
			}
			e.sparse[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	case *PositiveModulus:
		if o.M <= 0 {
			return fmt.Errorf("transforms: PositiveModulus needs positive modulus")
		}
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			dst.Offsets = append(dst.Offsets[:0], src.Offsets...)
			if src.IsDict() {
				// Elementwise op on a dict column: transform each distinct
				// value once, keep the indices as-is.
				dst.Dict = i64Values(dst.Dict, len(src.Dict))
				for d, v := range src.Dict {
					dst.Dict[d] = ((v % o.M) + o.M) % o.M
				}
				dst.Values = append(dst.Values, src.Values...)
			} else {
				dst.Values = i64Values(dst.Values, len(src.Values))
				for i, v := range src.Values {
					dst.Values[i] = ((v % o.M) + o.M) % o.M
				}
			}
			e.sparse[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	case *Enumerate:
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			for i := 0; i < e.rows; i++ {
				dst.Offsets[i] = int32(len(dst.Values))
				n := len(src.RowValues(i))
				for j := 0; j < n; j++ {
					dst.Values = append(dst.Values, int64(j))
				}
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	case *MapId:
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			dst.Offsets = append(dst.Offsets[:0], src.Offsets...)
			if src.IsDict() {
				dst.Dict = i64Values(dst.Dict, len(src.Dict))
				for d, v := range src.Dict {
					if mapped, ok := o.Mapping[v]; ok {
						dst.Dict[d] = mapped
					} else {
						dst.Dict[d] = o.Default
					}
				}
				dst.Values = append(dst.Values, src.Values...)
			} else {
				dst.Values = i64Values(dst.Values, len(src.Values))
				for i, v := range src.Values {
					if mapped, ok := o.Mapping[v]; ok {
						dst.Values[i] = mapped
					} else {
						dst.Values[i] = o.Default
					}
				}
			}
			e.sparse[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	case *IdListTransform:
		a, bb, out := c.sparseIn(o.A), c.sparseIn(o.B), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			sa, sb := e.sparse[a], e.sparse[bb]
			// Intersection compares actual values, so dict inputs are
			// materialized once per stripe via the slot cache.
			va, vb := e.sparseVals(a), e.sparseVals(bb)
			dst := e.newSparse()
			var processed int64
			for i := 0; i < e.rows; i++ {
				dst.Offsets[i] = int32(len(dst.Values))
				av := va[sa.Offsets[i]:sa.Offsets[i+1]]
				bv := vb[sb.Offsets[i]:sb.Offsets[i+1]]
				processed += int64(len(av) + len(bv))
				if len(av) == 0 || len(bv) == 0 {
					continue
				}
				dst.Values, e.scratch = intersectInto(dst.Values, av, bv, e.scratch)
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, processed)
			return nil
		})
	case *Cartesian:
		a, bb, out := c.sparseIn(o.A), c.sparseIn(o.B), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			sa, sb := e.sparse[a], e.sparse[bb]
			dst := e.newSparse()
			vb := e.sparseVals(bb)
			if sa.IsDict() {
				// Fold each distinct A value into the hash state once per
				// stripe; rows then combine the precomputed prefix with B.
				pref := e.dictPrefixes(sa.Dict)
				for i := 0; i < e.rows; i++ {
					dst.Offsets[i] = int32(len(dst.Values))
					dst.Values = crossPrefixInto(dst.Values,
						sa.Values[sa.Offsets[i]:sa.Offsets[i+1]], pref,
						vb[sb.Offsets[i]:sb.Offsets[i+1]], o.MaxOutput)
				}
			} else {
				va := sa.Values
				for i := 0; i < e.rows; i++ {
					dst.Offsets[i] = int32(len(dst.Values))
					dst.Values = crossInto(dst.Values,
						va[sa.Offsets[i]:sa.Offsets[i+1]],
						vb[sb.Offsets[i]:sb.Offsets[i+1]], o.MaxOutput)
				}
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, int64(len(dst.Values)))
			return nil
		})
	case *NGram:
		if o.N <= 0 {
			return fmt.Errorf("transforms: NGram needs positive N")
		}
		in, out := c.sparseIn(o.In), c.sparseOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.newSparse()
			if src.IsDict() {
				// Seed each n-gram's hash from the per-dict-entry prefix
				// table; only the n-1 continuation values fold per element.
				pref := e.dictPrefixes(src.Dict)
				vals := e.sparseVals(in)
				for i := 0; i < e.rows; i++ {
					dst.Offsets[i] = int32(len(dst.Values))
					dst.Values = ngramPrefixInto(dst.Values,
						src.Values[src.Offsets[i]:src.Offsets[i+1]], pref,
						vals[src.Offsets[i]:src.Offsets[i+1]], o.N)
				}
			} else {
				for i := 0; i < e.rows; i++ {
					dst.Offsets[i] = int32(len(dst.Values))
					dst.Values = ngramInto(dst.Values, src.RowValues(i), o.N)
				}
			}
			dst.Offsets[e.rows] = int32(len(dst.Values))
			e.sparse[out] = dst
			e.account(op, int64(len(dst.Values))*int64(o.N))
			return nil
		})
	case *ComputeScore:
		in, out := c.sparseIn(o.In), c.scoreOut(o.Out)
		c.step(op, func(e *planExec) error {
			src := e.sparse[in]
			dst := e.arena.ScoreList(e.rows)
			dst.Offsets = append(dst.Offsets[:0], src.Offsets...)
			if cap(dst.Values) < len(src.Values) {
				dst.Values = make([]schema.ScoredValue, len(src.Values))
			} else {
				dst.Values = dst.Values[:len(src.Values)]
			}
			if src.IsDict() {
				// Score each distinct value once, then gather through the
				// per-stripe table by index.
				tab := resizeScratch(e.scoreTab, len(src.Dict))
				for d, v := range src.Dict {
					tab[d] = o.scored(v)
				}
				e.scoreTab = tab
				for i, idx := range src.Values {
					dst.Values[i] = tab[idx]
				}
			} else {
				for i, v := range src.Values {
					dst.Values[i] = o.scored(v)
				}
			}
			e.score[out] = dst
			e.account(op, int64(len(src.Values)))
			return nil
		})
	default:
		return fmt.Errorf("transforms: no compiled kernel for %T", op)
	}
	return nil
}

// lowerDenseMap compiles an elementwise dense op, extending the
// previous step's fusion chain when this op consumes its last output.
func (c *planCompiler) lowerDenseMap(o denseMapper) error {
	if err := o.validateMap(); err != nil {
		return err
	}
	if g := c.lastFused; g != nil {
		last := g.members[len(g.members)-1]
		if s, ok := c.denseSlots[o.mapIn()]; ok && s == last.out {
			g.members = append(g.members, fusedMember{op: o, out: c.denseOut(o.Output())})
			return nil
		}
	}
	in := c.denseIn(o.mapIn())
	g := &fusedDense{in: in, members: []fusedMember{{op: o, out: c.denseOut(o.Output())}}}
	run := func(e *planExec) error {
		src := e.dense[g.in]
		for _, m := range g.members {
			e.dense[m.out] = e.arena.Dense(e.rows)
		}
		for i := 0; i < e.rows; i++ {
			if !src.Present[i] {
				continue
			}
			v := src.Values[i]
			for _, m := range g.members {
				v = m.op.mapValue(v)
				out := e.dense[m.out]
				out.Present[i] = true
				out.Values[i] = v
			}
		}
		for _, m := range g.members {
			e.account(m.op, int64(e.rows))
		}
		return nil
	}
	c.p.steps = append(c.p.steps, planStep{op: &fusedStepMarker{Op: o, group: g}, run: run})
	c.lastFused = g
	return nil
}

// Run executes the compiled plan on the batch: row ops first (they
// rebuild the whole batch), then one map bind per raw input, the slot
// kernels, and one map publish per output. Output columns come from
// arena (nil degrades to plain allocation) and become part of the
// batch: when the batch is arena-owned, Batch.Release recycles inputs
// and outputs alike after tensors are materialized. Stats are
// identical to Graph.Run's.
//
// Run is safe for concurrent use on distinct batches.
func (p *Plan) Run(b *dwrf.Batch, arena *dwrf.Arena) (Stats, error) {
	stats := newStats()
	stats.RowsIn = b.Rows
	for _, op := range p.rowOps {
		values, err := op.Apply(b)
		if err != nil {
			return stats, fmt.Errorf("transforms: %s: %w", op.Name(), err)
		}
		cost := op.Cost()
		cls := op.Class()
		stats.ValuesByClass[cls] += values
		stats.CyclesByClass[cls] += float64(values) * cost.CyclesPerValue
		stats.MemBytes += float64(values) * cost.MemBytesPerValue
		stats.OpsRun++
	}

	e, _ := p.execs.Get().(*planExec)
	if e == nil {
		e = &planExec{}
	}
	e.reset(p, b.Rows, arena, &stats)

	for _, rb := range p.rawDense {
		if col, ok := b.Dense[rb.id]; ok {
			e.dense[rb.slot] = col
		} else {
			e.dense[rb.slot] = &e.emptyDense
		}
	}
	for _, rb := range p.rawSparse {
		if col, ok := b.Sparse[rb.id]; ok {
			e.sparse[rb.slot] = col
		} else {
			e.sparse[rb.slot] = &e.emptySparse
		}
	}

	for i := range p.steps {
		if err := p.steps[i].run(e); err != nil {
			e.finish()
			p.execs.Put(e)
			return stats, fmt.Errorf("transforms: %s: %w", p.steps[i].op.Name(), err)
		}
	}

	// Publish outputs into the batch maps. A published feature is never
	// raw-bound (its consumers resolve to the produced slot), so when
	// the batch shares the run's arena the column being replaced — a
	// previous run's output over the same batch — can be recycled
	// immediately. Never for shared batches (refcounted cache entries or
	// Derive views): a replaced column there may be borrowed from — and
	// still visible through — another consumer's batch.
	recycle := b.Arena() == arena && arena != nil && !b.Shared()
	for _, pb := range p.pubDense {
		if recycle {
			if old, ok := b.Dense[pb.id]; ok && old != e.dense[pb.slot] {
				arena.PutDense(old)
			}
		}
		b.Dense[pb.id] = e.dense[pb.slot]
	}
	for _, pb := range p.pubSparse {
		if recycle {
			if old, ok := b.Sparse[pb.id]; ok && old != e.sparse[pb.slot] {
				arena.PutSparse(old)
			}
		}
		b.Sparse[pb.id] = e.sparse[pb.slot]
	}
	for _, pb := range p.pubScore {
		if recycle {
			if old, ok := b.ScoreList[pb.id]; ok && old != e.score[pb.slot] {
				arena.PutScoreList(old)
			}
		}
		b.ScoreList[pb.id] = e.score[pb.slot]
	}

	stats.RowsOut = b.Rows
	e.finish()
	p.execs.Put(e)
	return stats, nil
}
