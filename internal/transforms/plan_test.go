package transforms

import (
	"sort"
	"sync"
	"testing"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
	"dsi/internal/tensor"
)

// The golden parity suite: every op (and the §7.2 chained example) runs
// through both the legacy interpreter (Graph.Run) and the compiled
// slot-indexed plan (Plan.Run) on identical batches, and the resulting
// columns must be byte-identical — including missing-feature and
// empty-row edges — along with the Stats and the materialized tensors'
// ContentSum.

// copyBatch deep-copies a batch so the two execution paths cannot
// observe each other's mutations.
func copyBatch(b *dwrf.Batch) *dwrf.Batch {
	nb := &dwrf.Batch{
		Rows:      b.Rows,
		Labels:    append([]float32(nil), b.Labels...),
		Dense:     map[schema.FeatureID]*dwrf.DenseColumn{},
		Sparse:    map[schema.FeatureID]*dwrf.SparseColumn{},
		ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
	}
	for id, c := range b.Dense {
		nb.Dense[id] = &dwrf.DenseColumn{
			Present: append([]bool(nil), c.Present...),
			Values:  append([]float32(nil), c.Values...),
		}
	}
	for id, c := range b.Sparse {
		nb.Sparse[id] = &dwrf.SparseColumn{
			Offsets: append([]int32(nil), c.Offsets...),
			Values:  append([]int64(nil), c.Values...),
			Dict:    append([]int64(nil), c.Dict...),
		}
	}
	for id, c := range b.ScoreList {
		nb.ScoreList[id] = &dwrf.ScoreListColumn{
			Offsets: append([]int32(nil), c.Offsets...),
			Values:  append([]schema.ScoredValue(nil), c.Values...),
		}
	}
	return nb
}

// sliceEq compares element-wise, treating nil and empty as equal (the
// interpreter's fresh allocations and the plan's recycled buffers
// differ only in that respect).
func sliceEq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// requireBatchEqual asserts both paths produced byte-identical batches.
func requireBatchEqual(t *testing.T, want, got *dwrf.Batch) {
	t.Helper()
	if want.Rows != got.Rows {
		t.Fatalf("rows: interpreter %d, plan %d", want.Rows, got.Rows)
	}
	if !sliceEq(want.Labels, got.Labels) {
		t.Fatalf("labels differ: %v vs %v", want.Labels, got.Labels)
	}
	if len(want.Dense) != len(got.Dense) || len(want.Sparse) != len(got.Sparse) || len(want.ScoreList) != len(got.ScoreList) {
		t.Fatalf("column sets differ: dense %d/%d sparse %d/%d score %d/%d",
			len(want.Dense), len(got.Dense), len(want.Sparse), len(got.Sparse), len(want.ScoreList), len(got.ScoreList))
	}
	for id, w := range want.Dense {
		g := got.Dense[id]
		if g == nil || !sliceEq(w.Present, g.Present) || !sliceEq(w.Values, g.Values) {
			t.Fatalf("dense %d differs:\nwant %+v\ngot  %+v", id, w, g)
		}
	}
	for id, w := range want.Sparse {
		g := got.Sparse[id]
		// Compare through MaterializedValues: the interpreter expands
		// dictionary columns up front while the plan keeps them
		// dict-indexed, and both representations must decode equal.
		if g == nil || !sliceEq(w.Offsets, g.Offsets) ||
			!sliceEq(w.MaterializedValues(nil), g.MaterializedValues(nil)) {
			t.Fatalf("sparse %d differs:\nwant %+v\ngot  %+v", id, w, g)
		}
	}
	for id, w := range want.ScoreList {
		g := got.ScoreList[id]
		if g == nil || !sliceEq(w.Offsets, g.Offsets) || !sliceEq(w.Values, g.Values) {
			t.Fatalf("score-list %d differs:\nwant %+v\ngot  %+v", id, w, g)
		}
	}
}

func requireStatsEqual(t *testing.T, want, got Stats) {
	t.Helper()
	if want.OpsRun != got.OpsRun || want.RowsIn != got.RowsIn || want.RowsOut != got.RowsOut {
		t.Fatalf("stats counts differ: %+v vs %+v", want, got)
	}
	if want.MemBytes != got.MemBytes || want.TotalCycles() != got.TotalCycles() {
		t.Fatalf("stats costs differ: %+v vs %+v", want, got)
	}
	for cls, v := range want.ValuesByClass {
		if got.ValuesByClass[cls] != v {
			t.Fatalf("values[%s] = %d, want %d", cls, got.ValuesByClass[cls], v)
		}
	}
	for cls, v := range want.CyclesByClass {
		if got.CyclesByClass[cls] != v {
			t.Fatalf("cycles[%s] = %v, want %v", cls, got.CyclesByClass[cls], v)
		}
	}
}

// allFeatureIDs splits a batch's features by kind, for materialization.
func allFeatureIDs(b *dwrf.Batch) (dense, sparse []schema.FeatureID) {
	for id := range b.Dense {
		dense = append(dense, id)
	}
	for id := range b.Sparse {
		sparse = append(sparse, id)
	}
	return dense, sparse
}

// runParity executes the graph through both paths on copies of the
// batch and asserts byte-identical batches, identical stats, and equal
// materialized ContentSums. It returns the interpreter's batch for
// extra assertions. The plan runs both with and without an arena.
func runParity(t *testing.T, g *Graph, batch *dwrf.Batch) *dwrf.Batch {
	t.Helper()
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	plan, err := g.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}

	interp := copyBatch(batch)
	wantStats, err := g.Run(interp)
	if err != nil {
		t.Fatal(err)
	}

	for name, arena := range map[string]*dwrf.Arena{"arena": dwrf.NewArena(), "no-arena": nil} {
		compiled := copyBatch(batch)
		gotStats, err := plan.Run(compiled, arena)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireBatchEqual(t, interp, compiled)
		requireStatsEqual(t, wantStats, gotStats)

		dense, sparse := allFeatureIDs(interp)
		wantT, err := tensor.Materialize(interp, dense, sparse)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := tensor.Materialize(compiled, dense, sparse)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, gotSum := tensor.NewContentSum(), tensor.NewContentSum()
		wantSum.AddBatch(wantT)
		gotSum.AddBatch(gotT)
		if !wantSum.Equal(gotSum) {
			t.Fatalf("%s: ContentSum differs", name)
		}
	}
	return interp
}

// parityBatch is testBatch with the empty-row and absent-value edges
// already in it (sparse row 2 is empty, dense row 2 is absent), grown a
// little so ragged rows vary.
func parityBatch() *dwrf.Batch {
	b := testBatch()
	grow(b)
	grow(b)
	return b
}

func TestPlanParityEveryOp(t *testing.T) {
	g := NewGraph().Add(
		// Dense normalization, including reads of a missing dense
		// feature (40).
		&Logit{In: 1, Out: 100},
		&BoxCox{In: 1, Out: 101, Lambda: 0.5},
		&Clamp{In: 1, Out: 102, Lo: -1, Hi: 1},
		&GetLocalHour{In: 1, Out: 103, OffsetMinutes: 90},
		&Onehot{In: 1, Out: 104, Buckets: 8, Min: -1, Max: 1},
		&Logit{In: 40, Out: 105},
		// Feature generation from dense.
		&Bucketize{In: 1, Out: 106, Borders: []float32{-0.5, 0.25, 0.75}},
		// Sparse normalization and generation, including reads of a
		// missing sparse feature (41).
		&SigridHash{In: 2, Out: 110, Salt: 5, MaxValue: 1000},
		&FirstX{In: 2, Out: 111, X: 2},
		&PositiveModulus{In: 2, Out: 112, M: 7},
		&Enumerate{In: 2, Out: 113},
		&MapId{In: 2, Out: 114, Mapping: map[int64]int64{10: 1000, 40: 4000}, Default: -1},
		&IdListTransform{A: 2, B: 3, Out: 115},
		&Cartesian{A: 2, B: 3, Out: 116, MaxOutput: 4},
		&NGram{In: 2, Out: 117, N: 2},
		&ComputeScore{In: 2, Out: 118, ScaleA: 2, BiasB: 1},
		&SigridHash{In: 41, Out: 119, Salt: 1, MaxValue: 50},
		&Cartesian{A: 2, B: 41, Out: 120},
		// Row op: runs first on both paths, same seed, same kept rows.
		&Sampling{Rate: 0.5, Seed: 9},
	)
	out := runParity(t, g, parityBatch())
	if out.Rows >= 16 {
		t.Fatalf("sampling kept all %d rows; edge not exercised", out.Rows)
	}
	// The missing-feature reads must still have produced output columns.
	if out.Dense[105] == nil || out.Sparse[119] == nil || out.Sparse[120] == nil {
		t.Fatal("missing-feature outputs not produced")
	}
}

// dictify rewrites every sparse column into its dictionary-indexed
// representation (sorted distinct values in Dict, per-occurrence indices
// in Values) — exactly what the v2 DWRF reader produces for
// dict-encoded streams.
func dictify(b *dwrf.Batch) *dwrf.Batch {
	for id, c := range b.Sparse {
		if len(c.Values) == 0 {
			continue
		}
		dict := append([]int64(nil), c.Values...)
		sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
		n := 1
		for i := 1; i < len(dict); i++ {
			if dict[i] != dict[n-1] {
				dict[n] = dict[i]
				n++
			}
		}
		dict = dict[:n]
		idx := make([]int64, len(c.Values))
		for i, v := range c.Values {
			idx[i] = int64(sort.Search(len(dict), func(d int) bool { return dict[d] >= v }))
		}
		b.Sparse[id] = &dwrf.SparseColumn{Offsets: c.Offsets, Values: idx, Dict: dict}
	}
	return b
}

// TestPlanParityDictEncodedInputs feeds the compiled plan
// dictionary-indexed sparse inputs while the interpreter sees the same
// batch in plain form, covering every dict-aware kernel: the decoded
// outputs, stats, and tensor ContentSums must match, and elementwise ops
// must keep (not expand) the dictionary representation. The graph
// fingerprint must not depend on input representation either.
func TestPlanParityDictEncodedInputs(t *testing.T) {
	mk := func() *Graph {
		return NewGraph().Add(
			&SigridHash{In: 2, Out: 110, Salt: 5, MaxValue: 1000},
			&FirstX{In: 2, Out: 111, X: 2},
			&PositiveModulus{In: 2, Out: 112, M: 7},
			&Enumerate{In: 2, Out: 113},
			&MapId{In: 2, Out: 114, Mapping: map[int64]int64{10: 1000, 40: 4000}, Default: -1},
			&IdListTransform{A: 2, B: 3, Out: 115},
			&Cartesian{A: 2, B: 3, Out: 116, MaxOutput: 4},
			&NGram{In: 2, Out: 117, N: 2},
			&ComputeScore{In: 2, Out: 118, ScaleA: 2, BiasB: 1},
			&Sampling{Rate: 0.5, Seed: 9},
		)
	}
	g := mk()
	plan, err := g.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Fingerprint()

	base := parityBatch()
	interp := copyBatch(base)
	wantStats, err := g.Run(interp)
	if err != nil {
		t.Fatal(err)
	}

	for name, arena := range map[string]*dwrf.Arena{"arena": dwrf.NewArena(), "no-arena": nil} {
		compiled := dictify(copyBatch(base))
		gotStats, err := plan.Run(compiled, arena)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireBatchEqual(t, interp, compiled)
		requireStatsEqual(t, wantStats, gotStats)
		if !compiled.Sparse[110].IsDict() {
			t.Fatalf("%s: SigridHash over a dict input should stay dict-indexed", name)
		}
		if compiled.Sparse[116].IsDict() || compiled.Sparse[117].IsDict() {
			t.Fatalf("%s: generative ops must produce plain columns", name)
		}

		dense, sparse := allFeatureIDs(interp)
		wantT, err := tensor.Materialize(interp, dense, sparse)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := tensor.Materialize(compiled, dense, sparse)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, gotSum := tensor.NewContentSum(), tensor.NewContentSum()
		wantSum.AddBatch(wantT)
		gotSum.AddBatch(gotT)
		if !wantSum.Equal(gotSum) {
			t.Fatalf("%s: ContentSum differs between plain and dict inputs", name)
		}
	}

	if mk().Fingerprint() != fp {
		t.Fatal("graph fingerprint unstable")
	}
}

// TestPlanParityChainedExample is §7.2's multi-op derivation chain:
// Bucketize one raw dense feature, FirstX a raw sparse one, cross and
// n-gram the intermediates, SigridHash the result.
func TestPlanParityChainedExample(t *testing.T) {
	g := NewGraph().Add(
		&Bucketize{In: 1, Out: 200, Borders: []float32{-2, -1, 0, 1, 2}},
		&FirstX{In: 2, Out: 201, X: 3},
		&Cartesian{A: 200, B: 201, Out: 202, MaxOutput: 8},
		&NGram{In: 202, Out: 203, N: 2},
		&SigridHash{In: 203, Out: 204, Salt: 7, MaxValue: 1 << 20},
	)
	out := runParity(t, g, parityBatch())
	if len(out.Sparse[204].Values) == 0 {
		t.Fatal("chained derivation produced no values")
	}
}

func TestPlanParityStandardGraph(t *testing.T) {
	g := StandardGraph([]schema.FeatureID{1}, []schema.FeatureID{2, 3}, 9, 1000)
	runParity(t, g, parityBatch())
}

func TestPlanParityEmptyBatch(t *testing.T) {
	g := NewGraph().Add(
		&Logit{In: 1, Out: 100},
		&SigridHash{In: 2, Out: 101, Salt: 1, MaxValue: 10},
		&Cartesian{A: 2, B: 3, Out: 102},
	)
	empty := &dwrf.Batch{
		Rows:      0,
		Labels:    []float32{},
		Dense:     map[schema.FeatureID]*dwrf.DenseColumn{},
		Sparse:    map[schema.FeatureID]*dwrf.SparseColumn{},
		ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
	}
	runParity(t, g, empty)
}

// TestPlanFusesDenseChains checks that a linear chain of elementwise
// dense ops lowers to one step and still matches the interpreter
// byte-for-byte (intermediates included).
func TestPlanFusesDenseChains(t *testing.T) {
	g := NewGraph().Add(
		&Logit{In: 1, Out: 100},
		&Clamp{In: 100, Out: 101, Lo: -2, Hi: 2},
		&BoxCox{In: 101, Out: 102, Lambda: 0.5},
		// Not fusable into the chain: reads the chain's head, not its
		// tail.
		&GetLocalHour{In: 100, Out: 103},
	)
	out := runParity(t, g, parityBatch())
	for _, id := range []schema.FeatureID{100, 101, 102, 103} {
		if out.Dense[id] == nil {
			t.Fatalf("dense %d missing", id)
		}
	}
	plan, err := g.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	// Logit+Clamp+BoxCox fuse into one step; GetLocalHour is its own.
	if plan.Ops() != 4 || plan.Steps() != 2 {
		t.Fatalf("ops=%d steps=%d, want 4 ops in 2 steps", plan.Ops(), plan.Steps())
	}
}

// TestPlanArenaReuseAcrossBatches cycles batches of different shapes
// through one plan and arena, releasing between runs, and checks each
// result against a fresh interpreter run — recycled buffers must never
// leak stale rows or values across batches.
func TestPlanArenaReuseAcrossBatches(t *testing.T) {
	g := StandardGraph([]schema.FeatureID{1}, []schema.FeatureID{2, 3}, 6, 1000)
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	plan, err := g.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	arena := dwrf.NewArena()

	shapes := []*dwrf.Batch{parityBatch(), testBatch(), parityBatch(), testBatch()}
	grow(shapes[2]) // a larger batch between small ones
	for round, shape := range shapes {
		interp := copyBatch(shape)
		if _, err := g.Run(interp); err != nil {
			t.Fatal(err)
		}
		// The compiled path consumes an arena-owned copy, as the worker
		// does: decode into arena, transform, release.
		compiled := arena.NewBatch(shape.Rows)
		tmp := copyBatch(shape)
		compiled.Labels, compiled.Dense, compiled.Sparse, compiled.ScoreList = tmp.Labels, tmp.Dense, tmp.Sparse, tmp.ScoreList
		if _, err := plan.Run(compiled, arena); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		requireBatchEqual(t, interp, compiled)
		compiled.Release()
	}
}

func TestPlanCompileRejectsInvalidOps(t *testing.T) {
	cases := []Op{
		&Onehot{In: 1, Out: 100, Buckets: 0},
		&SigridHash{In: 2, Out: 100, MaxValue: 0},
		&NGram{In: 2, Out: 100, N: 0},
		&Bucketize{In: 1, Out: 100, Borders: []float32{1, 1}},
		&Clamp{In: 1, Out: 100, Lo: 2, Hi: 1},
		&FirstX{In: 2, Out: 100, X: -1},
		&PositiveModulus{In: 2, Out: 100, M: 0},
	}
	for _, op := range cases {
		g := NewGraph().Add(op)
		if _, err := g.CompilePlan(); err == nil {
			t.Fatalf("%s: invalid configuration compiled", op.Name())
		}
	}
}

// TestPlanConcurrentRuns runs one shared plan+arena from many
// goroutines on distinct batches (as the worker's transform pool does)
// under the race detector.
func TestPlanConcurrentRuns(t *testing.T) {
	g := StandardGraph([]schema.FeatureID{1}, []schema.FeatureID{2, 3}, 6, 1000)
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	plan, err := g.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	arena := dwrf.NewArena()
	want := copyBatch(parityBatch())
	if _, err := g.Run(want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := copyBatch(parityBatch())
				if _, err := plan.Run(b, arena); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One more serial run must still match the interpreter.
	b := copyBatch(parityBatch())
	if _, err := plan.Run(b, arena); err != nil {
		t.Fatal(err)
	}
	requireBatchEqual(t, want, b)
}
