package transforms

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// --- shared row kernels --------------------------------------------------
//
// The per-row value math of the generation ops lives in append-style
// helpers used by both the legacy interpreter (Op.Apply) and the
// compiled Plan, so the two execution paths are byte-identical by
// construction: Apply feeds them per-row slices, the Plan's kernels
// feed them the output column's values array directly.

// crossInto appends the hashed Cartesian product of av×bv to dst,
// capped at maxOut pairs when maxOut > 0.
func crossInto(dst []int64, av, bv []int64, maxOut int) []int64 {
	n := len(av) * len(bv)
	if n == 0 {
		return dst
	}
	if maxOut > 0 && n > maxOut {
		n = maxOut
	}
	emitted := 0
outer:
	for _, x := range av {
		for _, y := range bv {
			if emitted >= n {
				break outer
			}
			dst = append(dst, hash64(x, y))
			emitted++
		}
	}
	return dst
}

// crossPrefixInto is crossInto for a dictionary-indexed left side: aIdx
// holds dictionary indices and pref the pre-mixed FNV state of each
// distinct left value, so the left half of every pair hash is computed
// once per distinct value per stripe instead of once per pair. Output
// is bit-identical to crossInto over the materialized values.
func crossPrefixInto(dst []int64, aIdx []int64, pref []uint64, bv []int64, maxOut int) []int64 {
	n := len(aIdx) * len(bv)
	if n == 0 {
		return dst
	}
	if maxOut > 0 && n > maxOut {
		n = maxOut
	}
	emitted := 0
outer:
	for _, xi := range aIdx {
		h0 := pref[xi]
		for _, y := range bv {
			if emitted >= n {
				break outer
			}
			dst = append(dst, finish64(mix64(h0, y)))
			emitted++
		}
	}
	return dst
}

// ngramInto appends the hash of every n-length sliding window of vals
// to dst.
func ngramInto(dst []int64, vals []int64, n int) []int64 {
	for j := 0; j+n <= len(vals); j++ {
		dst = append(dst, hash64(vals[j:j+n]...))
	}
	return dst
}

// ngramPrefixInto is ngramInto for a dictionary-indexed column: idxs
// holds the row's dictionary indices, pref the pre-mixed FNV state of
// each distinct value (the window head's contribution), and vals the
// row's materialized values for the window tail. Bit-identical to
// ngramInto over vals.
func ngramPrefixInto(dst []int64, idxs []int64, pref []uint64, vals []int64, n int) []int64 {
	for j := 0; j+n <= len(vals); j++ {
		h := pref[idxs[j]]
		for k := 1; k < n; k++ {
			h = mix64(h, vals[j+k])
		}
		dst = append(dst, finish64(h))
	}
	return dst
}

// intersectInto appends av∩bv to dst — membership in bv, preserving
// av's order and duplicates — using scratch as a reusable sorted
// membership buffer (replacing a per-row map[int64]bool allocation).
// It returns the extended dst and the possibly-regrown scratch.
func intersectInto(dst, av, bv, scratch []int64) ([]int64, []int64) {
	scratch = append(scratch[:0], bv...)
	slices.Sort(scratch)
	for _, v := range av {
		if _, ok := slices.BinarySearch(scratch, v); ok {
			dst = append(dst, v)
		}
	}
	return dst, scratch
}

// SigridHash hashes every categorical value into [0, MaxValue), the
// paper's canonical sparse normalization (and its headline GPU
// acceleration example: 11.9x on a V100 vs 20 CPU threads, §7.2).
type SigridHash struct {
	In, Out  schema.FeatureID
	Salt     int64
	MaxValue int64
}

// Name implements Op.
func (o *SigridHash) Name() string { return "SigridHash" }

// Class implements Op.
func (o *SigridHash) Class() Class { return SparseNorm }

// Inputs implements Op.
func (o *SigridHash) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *SigridHash) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *SigridHash) Cost() CostModel {
	return CostModel{CyclesPerValue: 48, MemBytesPerValue: 16, AccelSpeedup: 11.9}
}

// Apply implements Op.
func (o *SigridHash) Apply(b *dwrf.Batch) (int64, error) {
	if o.MaxValue <= 0 {
		return 0, fmt.Errorf("transforms: SigridHash needs positive MaxValue")
	}
	in := sparseInput(b, o.In)
	out := &dwrf.SparseColumn{
		Offsets: append([]int32(nil), in.Offsets...),
		Values:  make([]int64, len(in.Values)),
	}
	for i, v := range in.Values {
		out.Values[i] = hash64(v, o.Salt) % o.MaxValue
	}
	b.Sparse[o.Out] = out
	return int64(len(in.Values)), nil
}

// FirstX truncates each categorical list to its first X entries (sparse
// normalization by list-length capping).
type FirstX struct {
	In, Out schema.FeatureID
	X       int
}

// Name implements Op.
func (o *FirstX) Name() string { return "FirstX" }

// Class implements Op.
func (o *FirstX) Class() Class { return SparseNorm }

// Inputs implements Op.
func (o *FirstX) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *FirstX) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *FirstX) Cost() CostModel {
	return CostModel{CyclesPerValue: 10, MemBytesPerValue: 16, AccelSpeedup: 2.5}
}

// Apply implements Op.
func (o *FirstX) Apply(b *dwrf.Batch) (int64, error) {
	if o.X < 0 {
		return 0, fmt.Errorf("transforms: FirstX needs non-negative X")
	}
	in := sparseInput(b, o.In)
	out := buildSparse(b.Rows, func(i int) []int64 {
		vals := in.RowValues(i)
		if len(vals) > o.X {
			vals = vals[:o.X]
		}
		return vals
	})
	b.Sparse[o.Out] = out
	return int64(len(in.Values)), nil
}

// PositiveModulus maps every categorical value to ((v % M) + M) % M.
type PositiveModulus struct {
	In, Out schema.FeatureID
	M       int64
}

// Name implements Op.
func (o *PositiveModulus) Name() string { return "PositiveModulus" }

// Class implements Op.
func (o *PositiveModulus) Class() Class { return SparseNorm }

// Inputs implements Op.
func (o *PositiveModulus) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *PositiveModulus) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *PositiveModulus) Cost() CostModel {
	return CostModel{CyclesPerValue: 8, MemBytesPerValue: 16, AccelSpeedup: 7}
}

// Apply implements Op.
func (o *PositiveModulus) Apply(b *dwrf.Batch) (int64, error) {
	if o.M <= 0 {
		return 0, fmt.Errorf("transforms: PositiveModulus needs positive modulus")
	}
	in := sparseInput(b, o.In)
	out := &dwrf.SparseColumn{
		Offsets: append([]int32(nil), in.Offsets...),
		Values:  make([]int64, len(in.Values)),
	}
	for i, v := range in.Values {
		out.Values[i] = ((v % o.M) + o.M) % o.M
	}
	b.Sparse[o.Out] = out
	return int64(len(in.Values)), nil
}

// Enumerate replaces each list with the positions 0..len-1, as Python's
// enumerate.
type Enumerate struct {
	In, Out schema.FeatureID
}

// Name implements Op.
func (o *Enumerate) Name() string { return "Enumerate" }

// Class implements Op.
func (o *Enumerate) Class() Class { return SparseNorm }

// Inputs implements Op.
func (o *Enumerate) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Enumerate) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Enumerate) Cost() CostModel {
	return CostModel{CyclesPerValue: 5, MemBytesPerValue: 16, AccelSpeedup: 4}
}

// Apply implements Op.
func (o *Enumerate) Apply(b *dwrf.Batch) (int64, error) {
	in := sparseInput(b, o.In)
	out := buildSparse(b.Rows, func(i int) []int64 {
		n := len(in.RowValues(i))
		vals := make([]int64, n)
		for j := range vals {
			vals[j] = int64(j)
		}
		return vals
	})
	b.Sparse[o.Out] = out
	return int64(len(in.Values)), nil
}

// MapId remaps categorical IDs through a fixed table; unmapped IDs fall
// back to Default.
type MapId struct {
	In, Out schema.FeatureID
	Mapping map[int64]int64
	Default int64
}

// Name implements Op.
func (o *MapId) Name() string { return "MapId" }

// Class implements Op.
func (o *MapId) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *MapId) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *MapId) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *MapId) Cost() CostModel {
	return CostModel{CyclesPerValue: 60, MemBytesPerValue: 32, AccelSpeedup: 1.5}
}

// Apply implements Op.
func (o *MapId) Apply(b *dwrf.Batch) (int64, error) {
	in := sparseInput(b, o.In)
	out := &dwrf.SparseColumn{
		Offsets: append([]int32(nil), in.Offsets...),
		Values:  make([]int64, len(in.Values)),
	}
	for i, v := range in.Values {
		if mapped, ok := o.Mapping[v]; ok {
			out.Values[i] = mapped
		} else {
			out.Values[i] = o.Default
		}
	}
	b.Sparse[o.Out] = out
	return int64(len(in.Values)), nil
}

// IdListTransform intersects two categorical lists row-wise.
type IdListTransform struct {
	A, B, Out schema.FeatureID

	// scratch recycles the sorted membership buffer across Apply calls
	// (one buffer per row used to cost a map[int64]bool allocation). A
	// sync.Pool rather than a bare slice because the worker's transform
	// pool runs the same op instance concurrently on different batches;
	// unexported, so gob-transported specs carry an empty pool.
	scratch sync.Pool
}

// Name implements Op.
func (o *IdListTransform) Name() string { return "IdListTransform" }

// Class implements Op.
func (o *IdListTransform) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *IdListTransform) Inputs() []schema.FeatureID { return []schema.FeatureID{o.A, o.B} }

// Output implements Op.
func (o *IdListTransform) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *IdListTransform) Cost() CostModel {
	return CostModel{CyclesPerValue: 70, MemBytesPerValue: 40, AccelSpeedup: 2}
}

// Apply implements Op.
func (o *IdListTransform) Apply(b *dwrf.Batch) (int64, error) {
	a := sparseInput(b, o.A)
	bb := sparseInput(b, o.B)
	sp, _ := o.scratch.Get().(*[]int64)
	if sp == nil {
		sp = new([]int64)
	}
	scratch := *sp
	var processed int64
	out := buildSparse(b.Rows, func(i int) []int64 {
		av, bv := a.RowValues(i), bb.RowValues(i)
		processed += int64(len(av) + len(bv))
		if len(av) == 0 || len(bv) == 0 {
			return nil
		}
		var inter []int64
		inter, scratch = intersectInto(nil, av, bv, scratch)
		return inter
	})
	*sp = scratch
	o.scratch.Put(sp)
	b.Sparse[o.Out] = out
	return processed, nil
}

// Cartesian computes the Cartesian product of two categorical lists,
// hashing each pair into a new ID — the classic (and expensive)
// cross-feature generator.
type Cartesian struct {
	A, B, Out schema.FeatureID
	// MaxOutput caps the per-row product size; 0 means unlimited.
	MaxOutput int
}

// Name implements Op.
func (o *Cartesian) Name() string { return "Cartesian" }

// Class implements Op.
func (o *Cartesian) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *Cartesian) Inputs() []schema.FeatureID { return []schema.FeatureID{o.A, o.B} }

// Output implements Op.
func (o *Cartesian) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *Cartesian) Cost() CostModel {
	return CostModel{CyclesPerValue: 90, MemBytesPerValue: 48, AccelSpeedup: 3}
}

// Apply implements Op. The processed-value count is the number of output
// pairs (the work actually done).
func (o *Cartesian) Apply(b *dwrf.Batch) (int64, error) {
	a := sparseInput(b, o.A)
	bb := sparseInput(b, o.B)
	var processed int64
	out := buildSparse(b.Rows, func(i int) []int64 {
		vals := crossInto(nil, a.RowValues(i), bb.RowValues(i), o.MaxOutput)
		processed += int64(len(vals))
		return vals
	})
	b.Sparse[o.Out] = out
	return processed, nil
}

// NGram hashes every n-length sliding window of a categorical list into a
// new ID.
type NGram struct {
	In, Out schema.FeatureID
	N       int
}

// Name implements Op.
func (o *NGram) Name() string { return "NGram" }

// Class implements Op.
func (o *NGram) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *NGram) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *NGram) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *NGram) Cost() CostModel {
	return CostModel{CyclesPerValue: 85, MemBytesPerValue: 40, AccelSpeedup: 3.5}
}

// Apply implements Op.
func (o *NGram) Apply(b *dwrf.Batch) (int64, error) {
	if o.N <= 0 {
		return 0, fmt.Errorf("transforms: NGram needs positive N")
	}
	in := sparseInput(b, o.In)
	var processed int64
	out := buildSparse(b.Rows, func(i int) []int64 {
		grams := ngramInto(nil, in.RowValues(i), o.N)
		processed += int64(len(grams) * o.N)
		return grams
	})
	b.Sparse[o.Out] = out
	return processed, nil
}

// ComputeScore derives a score list from a categorical list via an affine
// transform of each value ("arithmetic operations on sparse features").
type ComputeScore struct {
	In, Out schema.FeatureID
	ScaleA  float32
	BiasB   float32
}

// Name implements Op.
func (o *ComputeScore) Name() string { return "ComputeScore" }

// Class implements Op.
func (o *ComputeScore) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *ComputeScore) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *ComputeScore) Output() schema.FeatureID { return o.Out }

// Cost implements Op.
func (o *ComputeScore) Cost() CostModel {
	return CostModel{CyclesPerValue: 20, MemBytesPerValue: 28, AccelSpeedup: 8}
}

// scored is the op's per-value kernel, shared by Apply and the compiled
// Plan.
func (o *ComputeScore) scored(v int64) schema.ScoredValue {
	return schema.ScoredValue{
		Value: v,
		Score: o.ScaleA*float32(v%1000)/1000 + o.BiasB,
	}
}

// Apply implements Op.
func (o *ComputeScore) Apply(b *dwrf.Batch) (int64, error) {
	in := sparseInput(b, o.In)
	col := &dwrf.ScoreListColumn{Offsets: append([]int32(nil), in.Offsets...)}
	col.Values = make([]schema.ScoredValue, len(in.Values))
	for i, v := range in.Values {
		col.Values[i] = o.scored(v)
	}
	b.ScoreList[o.Out] = col
	return int64(len(in.Values)), nil
}

// Bucketize shards a dense feature into categorical buckets using
// explicit borders.
type Bucketize struct {
	In, Out schema.FeatureID
	Borders []float32
}

// Name implements Op.
func (o *Bucketize) Name() string { return "Bucketize" }

// Class implements Op.
func (o *Bucketize) Class() Class { return FeatureGen }

// Inputs implements Op.
func (o *Bucketize) Inputs() []schema.FeatureID { return []schema.FeatureID{o.In} }

// Output implements Op.
func (o *Bucketize) Output() schema.FeatureID { return o.Out }

// Cost implements Op. Bucketize is the paper's example of an op that
// barely benefits from GPUs (1.3x, §7.2).
func (o *Bucketize) Cost() CostModel {
	return CostModel{CyclesPerValue: 35, MemBytesPerValue: 12, AccelSpeedup: 1.3}
}

// validate checks the border configuration (shared with plan compile).
func (o *Bucketize) validate() error {
	if len(o.Borders) == 0 {
		return fmt.Errorf("transforms: Bucketize needs borders")
	}
	for i := 1; i < len(o.Borders); i++ {
		if o.Borders[i] <= o.Borders[i-1] {
			return fmt.Errorf("transforms: Bucketize borders not strictly increasing")
		}
	}
	return nil
}

// bucketOf is the op's scalar kernel, shared by Apply and the compiled
// Plan.
func (o *Bucketize) bucketOf(v float32) int64 {
	bucket := int64(len(o.Borders)) // above all borders
	for j, border := range o.Borders {
		if v < border {
			bucket = int64(j)
			break
		}
	}
	return bucket
}

// Apply implements Op.
func (o *Bucketize) Apply(b *dwrf.Batch) (int64, error) {
	if err := o.validate(); err != nil {
		return 0, err
	}
	in := denseInput(b, o.In)
	out := buildSparse(b.Rows, func(i int) []int64 {
		if !in.Present[i] {
			return nil
		}
		return []int64{o.bucketOf(in.Values[i])}
	})
	b.Sparse[o.Out] = out
	return int64(b.Rows), nil
}

// Sampling randomly keeps each row with probability Rate, rebuilding all
// columns (the row-level op of Table 11).
type Sampling struct {
	Rate float64
	Seed int64
}

// Name implements Op.
func (o *Sampling) Name() string { return "Sampling" }

// Class implements Op.
func (o *Sampling) Class() Class { return RowOp }

// Inputs implements Op.
func (o *Sampling) Inputs() []schema.FeatureID { return nil }

// Output implements Op.
func (o *Sampling) Output() schema.FeatureID { return 0 }

// Cost implements Op.
func (o *Sampling) Cost() CostModel {
	return CostModel{CyclesPerValue: 4, MemBytesPerValue: 16, AccelSpeedup: 1}
}

// Apply implements Op. It mutates the batch to contain only the kept
// rows.
func (o *Sampling) Apply(b *dwrf.Batch) (int64, error) {
	if o.Rate < 0 || o.Rate > 1 {
		return 0, fmt.Errorf("transforms: Sampling rate %v out of [0,1]", o.Rate)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	keep := make([]int, 0, b.Rows)
	for i := 0; i < b.Rows; i++ {
		if rng.Float64() < o.Rate {
			keep = append(keep, i)
		}
	}
	processed := int64(b.Rows)

	newLabels := make([]float32, len(keep))
	for ni, oi := range keep {
		if oi < len(b.Labels) {
			newLabels[ni] = b.Labels[oi]
		}
	}
	for id, col := range b.Dense {
		nc := &dwrf.DenseColumn{Present: make([]bool, len(keep)), Values: make([]float32, len(keep))}
		for ni, oi := range keep {
			nc.Present[ni] = col.Present[oi]
			nc.Values[ni] = col.Values[oi]
		}
		b.Dense[id] = nc
	}
	for id, col := range b.Sparse {
		nc := buildSparse(len(keep), func(ni int) []int64 { return col.RowValues(keep[ni]) })
		if col.IsDict() {
			// RowValues of a dictionary-indexed column are indices; the
			// rebuilt column keeps the representation, so carry the
			// dictionary (copied — arena columns must not alias).
			nc.Dict = append([]int64(nil), col.Dict...)
		}
		b.Sparse[id] = nc
	}
	for id, col := range b.ScoreList {
		nc := &dwrf.ScoreListColumn{Offsets: make([]int32, len(keep)+1)}
		for ni, oi := range keep {
			nc.Offsets[ni] = int32(len(nc.Values))
			nc.Values = append(nc.Values, col.RowValues(oi)...)
		}
		nc.Offsets[len(keep)] = int32(len(nc.Values))
		b.ScoreList[id] = nc
	}
	b.Rows = len(keep)
	b.Labels = newLabels
	return processed, nil
}
