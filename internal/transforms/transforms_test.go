package transforms

import (
	"math"
	"testing"
	"testing/quick"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// testBatch builds a batch with one dense feature (id 1) and two sparse
// features (ids 2, 3).
func testBatch() *dwrf.Batch {
	b := &dwrf.Batch{
		Rows:      4,
		Labels:    []float32{0, 1, 0, 1},
		Dense:     map[schema.FeatureID]*dwrf.DenseColumn{},
		Sparse:    map[schema.FeatureID]*dwrf.SparseColumn{},
		ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
	}
	b.Dense[1] = &dwrf.DenseColumn{
		Present: []bool{true, true, false, true},
		Values:  []float32{0.2, 0.9, 0, -5},
	}
	b.Sparse[2] = &dwrf.SparseColumn{
		Offsets: []int32{0, 3, 5, 5, 6},
		Values:  []int64{10, 20, 30, 40, 50, -7},
	}
	b.Sparse[3] = &dwrf.SparseColumn{
		Offsets: []int32{0, 2, 3, 3, 4},
		Values:  []int64{20, 99, 40, -7},
	}
	return b
}

func TestLogit(t *testing.T) {
	b := testBatch()
	op := &Logit{In: 1, Out: 100}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	out := b.Dense[100]
	if !out.Present[0] || out.Present[2] {
		t.Fatal("presence not propagated")
	}
	want := float32(math.Log(0.2 / 0.8))
	if math.Abs(float64(out.Values[0]-want)) > 1e-5 {
		t.Fatalf("logit(0.2) = %v, want %v", out.Values[0], want)
	}
	// Out-of-range input (-5) must be clamped, not NaN.
	if math.IsNaN(float64(out.Values[3])) || math.IsInf(float64(out.Values[3]), 0) {
		t.Fatalf("logit(-5) = %v", out.Values[3])
	}
}

func TestBoxCox(t *testing.T) {
	b := testBatch()
	op := &BoxCox{In: 1, Out: 100, Lambda: 2}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	got := b.Dense[100].Values[1] // x=0.9, lambda=2: (0.81-1)/2
	if math.Abs(float64(got)+0.095) > 1e-5 {
		t.Fatalf("boxcox(0.9) = %v, want -0.095", got)
	}
	// Lambda 0 means log.
	op0 := &BoxCox{In: 1, Out: 101, Lambda: 0}
	if _, err := op0.Apply(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(b.Dense[101].Values[1])-math.Log(0.9)) > 1e-5 {
		t.Fatalf("boxcox0(0.9) = %v", b.Dense[101].Values[1])
	}
}

func TestOnehot(t *testing.T) {
	b := testBatch()
	op := &Onehot{In: 1, Out: 100, Buckets: 10, Min: 0, Max: 1}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	col := b.Sparse[100]
	if got := col.RowValues(0); len(got) != 1 || got[0] != 2 { // 0.2*10=2
		t.Fatalf("onehot(0.2) = %v", got)
	}
	if got := col.RowValues(3); len(got) != 1 || got[0] != 0 { // -5 clamps to 0
		t.Fatalf("onehot(-5) = %v", got)
	}
	if got := col.RowValues(2); len(got) != 0 { // absent row
		t.Fatalf("onehot(absent) = %v", got)
	}
	bad := &Onehot{In: 1, Out: 101, Buckets: 0}
	if _, err := bad.Apply(b); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestClamp(t *testing.T) {
	b := testBatch()
	op := &Clamp{In: 1, Out: 100, Lo: 0, Hi: 0.5}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	vals := b.Dense[100].Values
	if vals[0] != 0.2 || vals[1] != 0.5 || vals[3] != 0 {
		t.Fatalf("clamp = %v", vals)
	}
	bad := &Clamp{In: 1, Out: 101, Lo: 1, Hi: 0}
	if _, err := bad.Apply(b); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestGetLocalHour(t *testing.T) {
	b := testBatch()
	b.Dense[1].Values[0] = 7200 // 02:00 UTC
	op := &GetLocalHour{In: 1, Out: 100, OffsetMinutes: 60}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := b.Dense[100].Values[0]; got != 3 {
		t.Fatalf("local hour = %v, want 3", got)
	}
}

func TestSigridHash(t *testing.T) {
	b := testBatch()
	op := &SigridHash{In: 2, Out: 100, Salt: 1, MaxValue: 1000}
	n, err := op.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("processed %d values, want 6", n)
	}
	out := b.Sparse[100]
	for _, v := range out.Values {
		if v < 0 || v >= 1000 {
			t.Fatalf("hashed value %d out of range", v)
		}
	}
	// Determinism: same input+salt => same output.
	b2 := testBatch()
	if _, err := op.Apply(b2); err != nil {
		t.Fatal(err)
	}
	for i := range out.Values {
		if out.Values[i] != b2.Sparse[100].Values[i] {
			t.Fatal("SigridHash not deterministic")
		}
	}
	bad := &SigridHash{In: 2, Out: 101, MaxValue: 0}
	if _, err := bad.Apply(b); err == nil {
		t.Fatal("zero MaxValue accepted")
	}
}

func TestFirstX(t *testing.T) {
	b := testBatch()
	op := &FirstX{In: 2, Out: 100, X: 2}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	out := b.Sparse[100]
	if got := out.RowValues(0); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("FirstX row0 = %v", got)
	}
	if got := out.RowValues(2); len(got) != 0 {
		t.Fatalf("FirstX empty row = %v", got)
	}
}

func TestPositiveModulus(t *testing.T) {
	b := testBatch()
	op := &PositiveModulus{In: 2, Out: 100, M: 7}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	out := b.Sparse[100]
	for _, v := range out.Values {
		if v < 0 || v >= 7 {
			t.Fatalf("modulus value %d out of range", v)
		}
	}
	// -7 mod 7 = 0, positively.
	if got := out.RowValues(3); got[0] != 0 {
		t.Fatalf("(-7 mod 7) = %d, want 0", got[0])
	}
}

func TestEnumerate(t *testing.T) {
	b := testBatch()
	op := &Enumerate{In: 2, Out: 100}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := b.Sparse[100].RowValues(0); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("enumerate = %v", got)
	}
}

func TestMapId(t *testing.T) {
	b := testBatch()
	op := &MapId{In: 2, Out: 100, Mapping: map[int64]int64{10: 1000}, Default: -1}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	got := b.Sparse[100].RowValues(0)
	if got[0] != 1000 || got[1] != -1 {
		t.Fatalf("MapId = %v", got)
	}
}

func TestIdListTransform(t *testing.T) {
	b := testBatch()
	op := &IdListTransform{A: 2, B: 3, Out: 100}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	out := b.Sparse[100]
	// Row 0: {10,20,30} ∩ {20,99} = {20}.
	if got := out.RowValues(0); len(got) != 1 || got[0] != 20 {
		t.Fatalf("intersection row0 = %v", got)
	}
	// Row 1: {40,50} ∩ {40} = {40}.
	if got := out.RowValues(1); len(got) != 1 || got[0] != 40 {
		t.Fatalf("intersection row1 = %v", got)
	}
	// Row 3: {-7} ∩ {-7} = {-7}.
	if got := out.RowValues(3); len(got) != 1 || got[0] != -7 {
		t.Fatalf("intersection row3 = %v", got)
	}
}

func TestCartesian(t *testing.T) {
	b := testBatch()
	op := &Cartesian{A: 2, B: 3, Out: 100}
	n, err := op.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.Sparse[100]
	// Row 0: 3x2 = 6 pairs.
	if got := out.RowValues(0); len(got) != 6 {
		t.Fatalf("cartesian row0 has %d values", len(got))
	}
	// Row 2: empty a => empty product.
	if got := out.RowValues(2); len(got) != 0 {
		t.Fatalf("cartesian empty row = %v", got)
	}
	if n != 6+2+0+1 {
		t.Fatalf("processed %d, want 9", n)
	}
	capped := &Cartesian{A: 2, B: 3, Out: 101, MaxOutput: 2}
	if _, err := capped.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := b.Sparse[101].RowValues(0); len(got) != 2 {
		t.Fatalf("capped cartesian = %d values", len(got))
	}
}

func TestNGram(t *testing.T) {
	b := testBatch()
	op := &NGram{In: 2, Out: 100, N: 2}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	out := b.Sparse[100]
	if got := out.RowValues(0); len(got) != 2 { // 3 values -> 2 bigrams
		t.Fatalf("ngram row0 = %d values", len(got))
	}
	if got := out.RowValues(3); len(got) != 0 { // 1 value -> no bigram
		t.Fatalf("ngram short row = %v", got)
	}
	bad := &NGram{In: 2, Out: 101, N: 0}
	if _, err := bad.Apply(b); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestComputeScore(t *testing.T) {
	b := testBatch()
	op := &ComputeScore{In: 2, Out: 100, ScaleA: 2, BiasB: 1}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	col := b.ScoreList[100]
	got := col.RowValues(0)
	if len(got) != 3 || got[0].Value != 10 {
		t.Fatalf("ComputeScore = %+v", got)
	}
	want := float32(2)*10/1000 + 1
	if math.Abs(float64(got[0].Score-want)) > 1e-6 {
		t.Fatalf("score = %v, want %v", got[0].Score, want)
	}
}

func TestBucketize(t *testing.T) {
	b := testBatch()
	op := &Bucketize{In: 1, Out: 100, Borders: []float32{0, 0.5}}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	col := b.Sparse[100]
	// 0.2 -> bucket 1, 0.9 -> bucket 2, -5 -> bucket 0.
	if col.RowValues(0)[0] != 1 || col.RowValues(1)[0] != 2 || col.RowValues(3)[0] != 0 {
		t.Fatalf("bucketize = %v %v %v", col.RowValues(0), col.RowValues(1), col.RowValues(3))
	}
	bad := &Bucketize{In: 1, Out: 101, Borders: []float32{1, 1}}
	if _, err := bad.Apply(b); err == nil {
		t.Fatal("non-increasing borders accepted")
	}
}

func TestSampling(t *testing.T) {
	b := testBatch()
	op := &Sampling{Rate: 0.5, Seed: 3}
	if _, err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	if b.Rows >= 4 && b.Rows != 4 {
		t.Fatalf("rows = %d", b.Rows)
	}
	if len(b.Labels) != b.Rows {
		t.Fatalf("labels %d != rows %d", len(b.Labels), b.Rows)
	}
	for _, col := range b.Sparse {
		if len(col.Offsets) != b.Rows+1 {
			t.Fatalf("sparse offsets %d for %d rows", len(col.Offsets), b.Rows)
		}
	}
	zero := &Sampling{Rate: 0, Seed: 1}
	b2 := testBatch()
	if _, err := zero.Apply(b2); err != nil {
		t.Fatal(err)
	}
	if b2.Rows != 0 {
		t.Fatalf("rate 0 kept %d rows", b2.Rows)
	}
	bad := &Sampling{Rate: 1.5}
	if _, err := bad.Apply(testBatch()); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestGraphTopologicalOrder(t *testing.T) {
	g := NewGraph()
	// Added out of order: 101 depends on 100.
	g.Add(&SigridHash{In: 100, Out: 101, Salt: 1, MaxValue: 100})
	g.Add(&FirstX{In: 2, Out: 100, X: 2})
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	b := testBatch()
	stats, err := g.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OpsRun != 2 {
		t.Fatalf("OpsRun = %d", stats.OpsRun)
	}
	if _, ok := b.Sparse[101]; !ok {
		t.Fatal("chained output missing")
	}
	// 101 must be the hash of the truncated list (len 2), not the raw.
	if got := b.Sparse[101].RowValues(0); len(got) != 2 {
		t.Fatalf("chain order wrong: %v", got)
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph()
	g.Add(&SigridHash{In: 101, Out: 100, Salt: 1, MaxValue: 10})
	g.Add(&SigridHash{In: 100, Out: 101, Salt: 2, MaxValue: 10})
	if err := g.Compile(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestGraphDuplicateProducer(t *testing.T) {
	g := NewGraph()
	g.Add(&FirstX{In: 2, Out: 100, X: 1})
	g.Add(&Enumerate{In: 3, Out: 100})
	if err := g.Compile(); err == nil {
		t.Fatal("duplicate producer accepted")
	}
}

func TestGraphRowOpsRunFirst(t *testing.T) {
	g := NewGraph()
	g.Add(&FirstX{In: 2, Out: 100, X: 2})
	g.Add(&Sampling{Rate: 1, Seed: 1}) // keeps all rows but must run first
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	if g.sorted[0].Class() != RowOp {
		t.Fatal("row op not first")
	}
}

func TestGraphStatsClasses(t *testing.T) {
	g := NewGraph()
	g.Add(&Logit{In: 1, Out: 100})
	g.Add(&SigridHash{In: 2, Out: 101, Salt: 1, MaxValue: 100})
	g.Add(&Cartesian{A: 2, B: 3, Out: 102})
	b := testBatch()
	stats, err := g.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CyclesByClass[DenseNorm] <= 0 || stats.CyclesByClass[SparseNorm] <= 0 || stats.CyclesByClass[FeatureGen] <= 0 {
		t.Fatalf("classes missing: %+v", stats.CyclesByClass)
	}
	if stats.TotalCycles() <= 0 || stats.MemBytes <= 0 {
		t.Fatal("no cost accounted")
	}
	share := stats.ClassShare(DenseNorm) + stats.ClassShare(SparseNorm) + stats.ClassShare(FeatureGen)
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("class shares sum to %v", share)
	}
}

func TestStandardGraphCycleSplitMatchesPaper(t *testing.T) {
	// §6.4: dense norm ≈5%, sparse norm ≈20%, feature gen ≈75% of
	// transformation cycles.
	dense := []schema.FeatureID{1}
	sparse := []schema.FeatureID{2, 3}
	g := StandardGraph(dense, sparse, 6, 1000)
	if err := g.Compile(); err != nil {
		t.Fatal(err)
	}
	b := testBatch()
	// Widen the batch so per-row noise averages out.
	for i := 0; i < 6; i++ {
		grow(b)
	}
	stats, err := g.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	gen := stats.ClassShare(FeatureGen)
	sparseShare := stats.ClassShare(SparseNorm)
	denseShare := stats.ClassShare(DenseNorm)
	if gen < 0.55 || gen > 0.95 {
		t.Fatalf("feature-gen share = %.2f, want ≈0.75", gen)
	}
	if sparseShare < 0.04 || sparseShare > 0.40 {
		t.Fatalf("sparse-norm share = %.2f, want ≈0.20", sparseShare)
	}
	if denseShare > 0.15 {
		t.Fatalf("dense-norm share = %.2f, want ≈0.05", denseShare)
	}
	if !(gen > sparseShare && sparseShare > denseShare) {
		t.Fatalf("ordering violated: gen %.2f sparse %.2f dense %.2f", gen, sparseShare, denseShare)
	}
}

// grow doubles the batch rows by self-concatenation.
func grow(b *dwrf.Batch) {
	n := b.Rows
	b.Labels = append(b.Labels, b.Labels...)
	for _, col := range b.Dense {
		col.Present = append(col.Present, col.Present...)
		col.Values = append(col.Values, col.Values...)
	}
	for _, col := range b.Sparse {
		base := col.Offsets[n]
		for i := 1; i <= n; i++ {
			col.Offsets = append(col.Offsets, base+col.Offsets[i])
		}
		col.Values = append(col.Values, col.Values[:base]...)
	}
	for _, col := range b.ScoreList {
		base := col.Offsets[n]
		for i := 1; i <= n; i++ {
			col.Offsets = append(col.Offsets, base+col.Offsets[i])
		}
		col.Values = append(col.Values, col.Values[:base]...)
	}
	b.Rows = 2 * n
}

func TestAccelSpeedupsMatchPaper(t *testing.T) {
	// §7.2: SigridHash 11.9x, Bucketize 1.3x on GPU.
	if got := (&SigridHash{}).Cost().AccelSpeedup; got != 11.9 {
		t.Fatalf("SigridHash speedup = %v", got)
	}
	if got := (&Bucketize{}).Cost().AccelSpeedup; got != 1.3 {
		t.Fatalf("Bucketize speedup = %v", got)
	}
}

func TestAllOpsHaveNamesAndCosts(t *testing.T) {
	ops := []Op{
		&Cartesian{}, &Bucketize{}, &ComputeScore{}, &Enumerate{},
		&PositiveModulus{}, &IdListTransform{}, &BoxCox{}, &Logit{},
		&MapId{}, &FirstX{}, &GetLocalHour{}, &SigridHash{}, &NGram{},
		&Onehot{}, &Clamp{}, &Sampling{},
	}
	if len(ops) != 16 {
		t.Fatalf("Table 11 lists 16 ops, have %d", len(ops))
	}
	seen := map[string]bool{}
	for _, op := range ops {
		if op.Name() == "" || seen[op.Name()] {
			t.Fatalf("bad/dup name %q", op.Name())
		}
		seen[op.Name()] = true
		c := op.Cost()
		if c.CyclesPerValue <= 0 || c.MemBytesPerValue <= 0 || c.AccelSpeedup < 1 {
			t.Fatalf("%s has degenerate cost %+v", op.Name(), c)
		}
	}
}

// Property: SigridHash output is always within [0, MaxValue) and
// row-structure is preserved.
func TestSigridHashRangeProperty(t *testing.T) {
	f := func(vals []int64, maxVal uint16) bool {
		m := int64(maxVal) + 1
		b := &dwrf.Batch{
			Rows:      1,
			Labels:    []float32{0},
			Dense:     map[schema.FeatureID]*dwrf.DenseColumn{},
			Sparse:    map[schema.FeatureID]*dwrf.SparseColumn{},
			ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
		}
		b.Sparse[1] = &dwrf.SparseColumn{Offsets: []int32{0, int32(len(vals))}, Values: vals}
		op := &SigridHash{In: 1, Out: 2, Salt: 7, MaxValue: m}
		if _, err := op.Apply(b); err != nil {
			return false
		}
		out := b.Sparse[2]
		if len(out.Values) != len(vals) {
			return false
		}
		for _, v := range out.Values {
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FirstX never lengthens a list and preserves prefixes.
func TestFirstXPrefixProperty(t *testing.T) {
	f := func(vals []int64, x uint8) bool {
		b := &dwrf.Batch{
			Rows:      1,
			Labels:    []float32{0},
			Dense:     map[schema.FeatureID]*dwrf.DenseColumn{},
			Sparse:    map[schema.FeatureID]*dwrf.SparseColumn{},
			ScoreList: map[schema.FeatureID]*dwrf.ScoreListColumn{},
		}
		b.Sparse[1] = &dwrf.SparseColumn{Offsets: []int32{0, int32(len(vals))}, Values: vals}
		op := &FirstX{In: 1, Out: 2, X: int(x)}
		if _, err := op.Apply(b); err != nil {
			return false
		}
		got := b.Sparse[2].RowValues(0)
		if len(got) > int(x) || len(got) > len(vals) {
			return false
		}
		for i := range got {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
