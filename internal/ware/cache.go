package ware

import (
	"container/list"
	"math"
	"sort"
	"sync"

	"dsi/internal/dwrf"
)

// Cache is a byte-bounded, tenant-fair, content-addressed store of
// shared batches: one per fleet node, shared by every pipeline the node
// hosts. Entries are reference-counted dwrf batches (the cache holds
// one reference; every Get hands out another), so an entry can be
// evicted while consumers still read it — the columns return to the
// arena only when the last holder releases.
//
// Fairness mirrors the service's weighted fair-share scheduler: each
// tenant gets a byte floor proportional to its weight, and eviction
// never takes a victim below its owner's floor on behalf of *another*
// tenant. A cold tenant churning through new data therefore steals only
// the over-floor surplus of hot tenants (and its own entries), never a
// hot tenant's fair share. An insert with no legal victim is refused —
// the batch simply stays exclusively owned by the inserting pipeline.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*entry // key: WareID.String()
	lru      *list.List        // *entry; front = most recently used
	tenants  map[string]*tenantState

	hits      map[string]int64 // by pack
	misses    int64
	inserts   int64
	evictions int64
	rejected  int64
	saved     int64 // bytes of decode/transform output served from cache
}

type entry struct {
	key    string
	pack   string
	batch  *dwrf.Batch
	bytes  int64
	tenant string // inserting tenant, charged for residency
	elem   *list.Element
}

type tenantState struct {
	weight     float64
	bytes      int64
	stripeHits int64
	xformHits  int64
	misses     int64
	saved      int64
}

// Stats is a point-in-time snapshot of cache-wide counters.
type Stats struct {
	Capacity   int64
	Resident   int64
	Entries    int
	StripeHits int64
	XformHits  int64
	Misses     int64
	Inserts    int64
	Evictions  int64
	Rejected   int64
	BytesSaved int64
}

// Hits sums stripe and transform hits.
func (s Stats) Hits() int64 { return s.StripeHits + s.XformHits }

// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// TenantStats is one tenant's view of the cache.
type TenantStats struct {
	Weight     float64
	Bytes      int64 // resident bytes charged to this tenant
	FloorBytes int64 // fair-share floor eviction respects
	StripeHits int64
	XformHits  int64
	Misses     int64
	BytesSaved int64
}

// Hits sums stripe and transform hits.
func (t TenantStats) Hits() int64 { return t.StripeHits + t.XformHits }

// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
func (t TenantStats) HitRate() float64 {
	total := t.Hits() + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits()) / float64(total)
}

// NewCache returns a cache bounded to capacity bytes. A non-positive
// capacity yields a cache that refuses every insert (lookups still
// work and count misses), which is how "disabled" composes with the
// rest of the wiring without nil checks.
func NewCache(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		tenants:  make(map[string]*tenantState),
		hits:     make(map[string]int64),
	}
}

// Capacity reports the byte bound.
func (c *Cache) Capacity() int64 { return c.capacity }

// RegisterTenant records a tenant's scheduling weight, which sets its
// eviction floor. Non-finite or non-positive weights register as 1
// (mirroring the service's CreateSession defaulting). Re-registering
// updates the weight in place.
func (c *Cache) RegisterTenant(id string, weight float64) {
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight <= 0 {
		weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenant(id).weight = weight
}

// tenant returns the state for id, creating it with weight 1. Callers
// hold c.mu.
func (c *Cache) tenant(id string) *tenantState {
	t := c.tenants[id]
	if t == nil {
		t = &tenantState{weight: 1}
		c.tenants[id] = t
	}
	return t
}

// floorLocked computes a tenant's byte floor: capacity scaled by its
// share of total registered weight. Callers hold c.mu.
func (c *Cache) floorLocked(t *tenantState) int64 {
	var total float64
	for _, ts := range c.tenants {
		total += ts.weight
	}
	if total <= 0 {
		return 0
	}
	return int64(float64(c.capacity) * t.weight / total)
}

// Get looks up a ware and, on a hit, returns the cached batch with one
// reference retained for the caller, who must Release it exactly once
// (directly for read-only use, or by releasing a Derive view built on
// it). Returns nil on a miss. The hit is attributed to tenant; misses
// are NOT counted here — a full per-split miss is counted by the
// stripe Insert that follows, so a missed xform probe that then hits
// the stripe cache still scores as one hit.
func (c *Cache) Get(id WareID, tenant string) *dwrf.Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[id.String()]
	if e == nil {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.hits[e.pack]++
	c.saved += e.bytes
	t := c.tenant(tenant)
	switch e.pack {
	case PackXform:
		t.xformHits++
	default:
		t.stripeHits++
	}
	t.saved += e.bytes
	e.batch.Retain()
	return e.batch
}

// Insert offers a batch for caching under id, charged to tenant. On
// acceptance it transitions the batch to shared ownership (the cache
// keeps one reference), retains one more for the caller, and returns
// (b, true): the caller now holds a counted reference it must consume
// via Derive or Release, and must no longer mutate the batch's columns
// in place. On refusal — duplicate key, zero capacity, batch larger
// than capacity, or no eviction victim above its owner's floor — it
// returns (b, false) and the caller keeps plain exclusive ownership.
//
// A stripe-pack Insert also counts one per-split cache miss for the
// tenant (accepted or not): every split lookup ends in exactly one of
// xform hit, stripe hit, or stripe insert.
func (c *Cache) Insert(id WareID, b *dwrf.Batch, tenant string) (*dwrf.Batch, bool) {
	size := b.MemBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenant(tenant)
	if id.Pack == PackStripe {
		t.misses++
		c.misses++
	}
	key := id.String()
	if c.entries[key] != nil || size <= 0 || size > c.capacity {
		c.rejected++
		return b, false
	}
	if !c.evictForLocked(size, tenant) {
		c.rejected++
		return b, false
	}
	b.Share()  // cache's reference
	b.Retain() // caller's reference
	e := &entry{key: key, pack: id.Pack, batch: b, bytes: size, tenant: tenant}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.used += size
	t.bytes += size
	c.inserts++
	return b, true
}

// evictForLocked frees room for need bytes on behalf of tenant,
// dropping least-recently-used entries whose owner is either over its
// floor or is the inserting tenant itself. Reports whether the space
// was found; on false the cache is left as it was apart from any
// legally evicted entries. Callers hold c.mu.
func (c *Cache) evictForLocked(need int64, tenant string) bool {
	for c.used+need > c.capacity {
		victim := c.victimLocked(tenant)
		if victim == nil {
			return false
		}
		c.dropLocked(victim)
		c.evictions++
	}
	return true
}

// victimLocked scans the LRU from the cold end for the first entry
// eviction may legally take on behalf of tenant. Callers hold c.mu.
func (c *Cache) victimLocked(tenant string) *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.tenant == tenant {
			return e
		}
		owner := c.tenants[e.tenant]
		if owner == nil || owner.bytes > c.floorLocked(owner) {
			return e
		}
	}
	return nil
}

// dropLocked removes an entry and releases the cache's reference on
// its batch; outstanding consumer references keep the columns alive.
// Callers hold c.mu.
func (c *Cache) dropLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.used -= e.bytes
	if t := c.tenants[e.tenant]; t != nil {
		t.bytes -= e.bytes
	}
	e.batch.Release()
}

// Flush evicts every entry (tests and eviction-refetch cycles).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		c.dropLocked(el.Value.(*entry))
		c.evictions++
		el = prev
	}
}

// Stats snapshots cache-wide counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Capacity:   c.capacity,
		Resident:   c.used,
		Entries:    len(c.entries),
		StripeHits: c.hits[PackStripe],
		XformHits:  c.hits[PackXform],
		Misses:     c.misses,
		Inserts:    c.inserts,
		Evictions:  c.evictions,
		Rejected:   c.rejected,
		BytesSaved: c.saved,
	}
}

// TenantStats snapshots one tenant's counters and current floor.
func (c *Cache) TenantStats(id string) TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenants[id]
	if t == nil {
		return TenantStats{}
	}
	return TenantStats{
		Weight:     t.weight,
		Bytes:      t.bytes,
		FloorBytes: c.floorLocked(t),
		StripeHits: t.stripeHits,
		XformHits:  t.xformHits,
		Misses:     t.misses,
		BytesSaved: t.saved,
	}
}

// Wares lists resident ware keys, most recently used first, capped at
// limit (<=0 means all). The fleet heartbeat ships this digest list to
// the service's cross-node ware index.
func (c *Cache) Wares(limit int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]string, 0, n)
	for el := c.lru.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Tenants lists registered tenant IDs in sorted order.
func (c *Cache) Tenants() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.tenants))
	for id := range c.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
