package ware

import (
	"fmt"
	"sync"
	"testing"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
)

// testBatch builds an arena batch with one dense column so MemBytes is
// deterministic: rows*(1+4) bitmap+values plus rows*4 labels = rows*9.
func testBatch(a *dwrf.Arena, rows int) *dwrf.Batch {
	b := a.NewBatch(rows)
	b.Labels = a.Labels(rows)
	b.Dense[1] = a.Dense(rows)
	return b
}

func TestWareIDStability(t *testing.T) {
	proj := schema.NewProjection(5, 1, 3)
	projSame := schema.NewProjection(3, 5, 1)
	a := StripeID(0xdeadbeef, "ignored/when/hashed", 7, proj)
	b := StripeID(0xdeadbeef, "other/path", 9, projSame)
	if a != b {
		t.Fatalf("content-hashed stripe IDs differ across paths: %v vs %v", a, b)
	}
	if a.Pack != PackStripe || a.IsZero() {
		t.Fatalf("bad stripe ID %v", a)
	}
	if c := StripeID(0xfeed, "p", 7, proj); c == a {
		t.Fatal("different content hashes collide")
	}
	if c := StripeID(0xdeadbeef, "p", 7, schema.NewProjection(1)); c == a {
		t.Fatal("different projections collide")
	}

	// Zero content hash falls back to path#stripe identity.
	p1 := StripeID(0, "tbl/part1", 0, proj)
	p2 := StripeID(0, "tbl/part1", 0, projSame)
	p3 := StripeID(0, "tbl/part1", 1, proj)
	if p1 != p2 {
		t.Fatalf("path-identity IDs differ: %v vs %v", p1, p2)
	}
	if p1 == p3 {
		t.Fatal("different stripes collide under path identity")
	}

	x1 := XformID(a, "plan-fp-1")
	x2 := XformID(a, "plan-fp-1")
	x3 := XformID(a, "plan-fp-2")
	if x1 != x2 || x1 == x3 {
		t.Fatalf("xform IDs unstable: %v %v %v", x1, x2, x3)
	}
	if x1.Pack != PackXform {
		t.Fatalf("xform pack = %q", x1.Pack)
	}
	if s := x1.String(); s != PackXform+":"+x1.Hash {
		t.Fatalf("String = %q", s)
	}
}

func TestCacheInsertGetLifecycle(t *testing.T) {
	arena := dwrf.NewArena()
	c := NewCache(1 << 20)
	c.RegisterTenant("a", 1)

	b := testBatch(arena, 16)
	id := StripeID(1, "", 0, nil)
	got, shared := c.Insert(id, b, "a")
	if !shared || got != b {
		t.Fatalf("Insert = (%p,%v), want (%p,true)", got, shared, b)
	}
	if !b.Shared() {
		t.Fatal("inserted batch not shared")
	}
	// Caller's reference from Insert.
	b.Release()

	// Two concurrent readers each get their own reference.
	r1 := c.Get(id, "a")
	r2 := c.Get(id, "b")
	if r1 != b || r2 != b {
		t.Fatal("Get returned wrong batch")
	}
	st := c.Stats()
	if st.StripeHits != 2 || st.Misses != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ts := c.TenantStats("b"); ts.StripeHits != 1 || ts.Misses != 0 {
		t.Fatalf("tenant b stats = %+v", ts)
	}
	r1.Release()
	r2.Release()

	// Cache still holds its reference: the entry survives and hits again.
	if c.Get(id, "a") == nil {
		t.Fatal("entry vanished while cached")
	} else {
		b.Release()
	}

	// Duplicate insert is refused and the caller keeps ownership.
	dup := testBatch(arena, 16)
	if _, ok := c.Insert(id, dup, "a"); ok {
		t.Fatal("duplicate insert accepted")
	}
	if dup.Shared() {
		t.Fatal("refused insert shared the batch")
	}
	dup.Release()

	c.Flush()
	if c.Get(id, "a") != nil {
		t.Fatal("entry survived Flush")
	}
	if st := c.Stats(); st.Resident != 0 || st.Entries != 0 {
		t.Fatalf("post-flush stats = %+v", st)
	}
}

func TestCacheDisabledAndOversize(t *testing.T) {
	arena := dwrf.NewArena()
	dis := NewCache(0)
	b := testBatch(arena, 8)
	if _, ok := dis.Insert(StripeID(2, "", 0, nil), b, "a"); ok {
		t.Fatal("zero-capacity cache accepted an insert")
	}
	b.Release()

	small := NewCache(10) // smaller than any real batch
	b2 := testBatch(arena, 8)
	if _, ok := small.Insert(StripeID(3, "", 0, nil), b2, "a"); ok {
		t.Fatal("oversize batch accepted")
	}
	b2.Release()
	if st := small.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	arena := dwrf.NewArena()
	// rows=16 → 144 bytes per test batch; capacity fits exactly two.
	c := NewCache(2 * 144)
	c.RegisterTenant("a", 1)

	ids := make([]WareID, 3)
	for i := range ids {
		ids[i] = StripeID(uint64(100+i), "", 0, nil)
		b, ok := c.Insert(ids[i], testBatch(arena, 16), "a")
		if !ok {
			t.Fatalf("insert %d refused", i)
		}
		if i == 1 {
			// Touch entry 0 so entry 1 becomes the LRU victim.
			c.Get(ids[0], "a").Release()
		}
		b.Release()
	}
	if c.Get(ids[1], "a") != nil {
		t.Fatal("LRU entry 1 not evicted")
	}
	for _, i := range []int{0, 2} {
		b := c.Get(ids[i], "a")
		if b == nil {
			t.Fatalf("entry %d evicted unexpectedly", i)
		}
		b.Release()
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestCacheTenantFloorIsolation is the acceptance check: a cold tenant
// flooding the cache with new wares cannot evict a hot tenant below the
// hot tenant's fair-share floor.
func TestCacheTenantFloorIsolation(t *testing.T) {
	arena := dwrf.NewArena()
	const batchBytes = 144 // rows=16 testBatch
	c := NewCache(4 * batchBytes)
	c.RegisterTenant("hot", 1)
	c.RegisterTenant("cold", 1)
	// Floors: capacity/2 = 2 batches each.

	// Hot tenant fills the whole cache.
	for i := 0; i < 4; i++ {
		b, ok := c.Insert(StripeID(uint64(1000+i), "", 0, nil), testBatch(arena, 16), "hot")
		if !ok {
			t.Fatalf("hot insert %d refused", i)
		}
		b.Release()
	}
	// Cold tenant floods with twice the capacity of fresh wares.
	for i := 0; i < 8; i++ {
		b, ok := c.Insert(StripeID(uint64(2000+i), "", 0, nil), testBatch(arena, 16), "cold")
		if b != nil && ok {
			b.Release()
		}
	}
	hot := c.TenantStats("hot")
	if hot.FloorBytes != 2*batchBytes {
		t.Fatalf("hot floor = %d, want %d", hot.FloorBytes, 2*batchBytes)
	}
	if hot.Bytes < hot.FloorBytes {
		t.Fatalf("hot tenant evicted below floor: %d < %d", hot.Bytes, hot.FloorBytes)
	}
	cold := c.TenantStats("cold")
	if cold.Bytes > cold.FloorBytes {
		t.Fatalf("cold tenant above floor: %d > %d", cold.Bytes, cold.FloorBytes)
	}

	// Once the cold tenant is at its floor, further cold inserts evict
	// only its own entries — hot residency is untouched.
	beforeHot := c.TenantStats("hot").Bytes
	b, ok := c.Insert(StripeID(3000, "", 0, nil), testBatch(arena, 16), "cold")
	if !ok {
		t.Fatal("cold self-eviction insert refused")
	}
	b.Release()
	if after := c.TenantStats("hot").Bytes; after != beforeHot {
		t.Fatalf("hot residency changed %d → %d on cold insert", beforeHot, after)
	}
}

// TestCacheWeightedFloors checks floors track registered weights.
func TestCacheWeightedFloors(t *testing.T) {
	c := NewCache(900)
	c.RegisterTenant("x", 1)
	c.RegisterTenant("y", 2)
	if f := c.TenantStats("x").FloorBytes; f != 300 {
		t.Fatalf("x floor = %d, want 300", f)
	}
	if f := c.TenantStats("y").FloorBytes; f != 600 {
		t.Fatalf("y floor = %d, want 600", f)
	}
	// Invalid weights default to 1, mirroring CreateSession.
	c.RegisterTenant("y", -3)
	if f := c.TenantStats("y").FloorBytes; f != 450 {
		t.Fatalf("y floor after invalid weight = %d, want 450", f)
	}
}

// TestCacheConcurrentAccess hammers Insert/Get/Flush from many
// goroutines; run under -race this is the cache's data-race check.
func TestCacheConcurrentAccess(t *testing.T) {
	arena := dwrf.NewArena()
	c := NewCache(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 200; i++ {
				id := StripeID(uint64(i%17), "", 0, nil)
				if b := c.Get(id, tenant); b != nil {
					b.Release()
					continue
				}
				b, _ := c.Insert(id, testBatch(arena, 8), tenant)
				b.Release()
				if i%50 == 0 && g == 0 {
					c.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	c.Flush()
	if st := c.Stats(); st.Resident != 0 {
		t.Fatalf("resident after flush = %d", st.Resident)
	}
}
