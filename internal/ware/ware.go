// Package ware gives preprocessing artifacts content-addressed
// identities and a bounded, tenant-fair cache keyed by them.
//
// DSI's economics rest on preprocessing being recomputed per training
// job even when jobs overlap heavily in data: different models train
// over the same tables, and one model's refresh re-reads yesterday's
// partitions. A WareID names the *content* of a preprocessing artifact
// — a decoded stripe under a projection, or that stripe after a
// specific transform plan — so any pipeline on a node can reuse another
// pipeline's work when the identities collide, across session and
// tenant boundaries.
package ware

import (
	"fmt"
	"hash/fnv"

	"dsi/internal/schema"
)

// Pack names for the artifact kinds the fleet cache stores.
const (
	// PackStripe addresses a decoded stripe batch: raw columns for a
	// projection, post-extract, pre-transform.
	PackStripe = "stripe"
	// PackXform addresses a transformed batch: PackStripe content after
	// a specific compiled plan ran over it (pre-materialization, so one
	// entry serves sessions with different tensor output lists).
	PackXform = "xform"
)

// WareID is a content-addressed artifact name: a pack type plus a hex
// digest of everything that determines the artifact's bytes. Two
// pipelines that would compute identical batches derive identical
// WareIDs, regardless of table name, session, or tenant.
type WareID struct {
	Pack string
	Hash string
}

// String renders the canonical "pack:hash" form.
func (w WareID) String() string { return w.Pack + ":" + w.Hash }

// IsZero reports whether the ID is unset.
func (w WareID) IsZero() bool { return w.Pack == "" && w.Hash == "" }

// StripeID names the batch decoded from one stripe under a projection.
// contentHash is the stripe's DWRF content digest (Reader.
// StripeContentHash), a pure function of the stored bytes — so two
// tables holding identical stripes dedup against each other. Files
// written before the digest existed report zero; those fall back to
// path+index identity, which still dedups re-reads of the same stripe.
// The projection is part of the identity because it selects which
// streams get decoded: proj.IDs() is sorted, keeping the digest stable
// across equivalent projections.
func StripeID(contentHash uint64, path string, stripe int, proj *schema.Projection) WareID {
	h := fnv.New64a()
	if contentHash != 0 {
		fmt.Fprintf(h, "c%016x|", contentHash)
	} else {
		fmt.Fprintf(h, "p%s#%d|", path, stripe)
	}
	if proj == nil {
		h.Write([]byte("*"))
	} else {
		for _, id := range proj.IDs() {
			fmt.Fprintf(h, "%d,", id)
		}
	}
	return WareID{Pack: PackStripe, Hash: fmt.Sprintf("%016x", h.Sum64())}
}

// XformID names the batch produced by running a transform plan over a
// stripe ware. planFingerprint is transforms.Plan.Fingerprint (or
// Graph.Fingerprint for interpreted sessions): it digests the full op
// configuration, so sessions only collide when they would genuinely
// compute the same derived columns.
func XformID(stripe WareID, planFingerprint string) WareID {
	h := fnv.New64a()
	h.Write([]byte(stripe.Hash))
	h.Write([]byte{'|'})
	h.Write([]byte(planFingerprint))
	return WareID{Pack: PackXform, Hash: fmt.Sprintf("%016x", h.Sum64())}
}
