// Package warehouse implements the Hive-style data warehouse of §3.1.2:
// partitioned tables whose rows are stored as DWRF columnar files in a
// Tectonic cluster.
//
// Training jobs address data exactly as in the paper: a table, a row
// filter (the set of date partitions to read), and a column filter (the
// feature projection). The warehouse also exposes the storage statistics
// (partition sizes, per-feature bytes) behind Tables 3 and 5 and
// Figure 7.
package warehouse

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
	"dsi/internal/tectonic"
)

// ErrNotFound is returned for unknown tables or partitions.
var ErrNotFound = errors.New("warehouse: not found")

// Warehouse is a catalog of partitioned tables over one Tectonic cluster.
type Warehouse struct {
	cluster *tectonic.Cluster

	mu     sync.Mutex
	tables map[string]*Table

	readerMu    sync.Mutex
	readers     map[string]*list.Element // *readerEntry
	readerLRU   *list.List               // front = most recently used
	readerLimit int
}

// readerEntry is one cached open reader.
type readerEntry struct {
	path string
	r    *dwrf.Reader
}

// DefaultReaderCacheLimit bounds the shared reader cache when no
// explicit limit is set: enough for every partition of a sizeable
// training window to stay open, while a long-lived service scanning
// thousands of partitions no longer grows the map without bound.
const DefaultReaderCacheLimit = 256

// New returns an empty warehouse on cluster.
func New(cluster *tectonic.Cluster) *Warehouse {
	return &Warehouse{
		cluster:     cluster,
		tables:      make(map[string]*Table),
		readers:     make(map[string]*list.Element),
		readerLRU:   list.New(),
		readerLimit: DefaultReaderCacheLimit,
	}
}

// SetReaderCacheLimit bounds the shared reader cache to n open readers
// (n <= 0 restores the default), evicting least-recently-used entries
// immediately if the cache is already over the new bound. It shares its
// sizing story with the fleet batch cache: cmd/dppd exposes both knobs
// side by side.
func (w *Warehouse) SetReaderCacheLimit(n int) {
	if n <= 0 {
		n = DefaultReaderCacheLimit
	}
	w.readerMu.Lock()
	defer w.readerMu.Unlock()
	w.readerLimit = n
	w.evictReadersLocked()
}

// evictReadersLocked drops least-recently-used readers until the cache
// fits the limit. Evicted readers are simply dropped: dwrf readers hold
// no OS resources (Tectonic is in-process), so eviction is garbage
// collection of footer decode state; in-flight reads through an evicted
// instance finish normally. Callers hold readerMu.
func (w *Warehouse) evictReadersLocked() {
	for w.readerLRU.Len() > w.readerLimit {
		el := w.readerLRU.Back()
		w.readerLRU.Remove(el)
		delete(w.readers, el.Value.(*readerEntry).path)
	}
}

// Cluster exposes the underlying storage (for experiments that inspect
// I/O accounting).
func (w *Warehouse) Cluster() *tectonic.Cluster { return w.cluster }

// Table is one partitioned dataset.
type Table struct {
	Name   string
	Schema *schema.TableSchema
	// WriteOptions is the DWRF layout used for new partitions; changing
	// it affects only subsequently written partitions, mirroring how the
	// paper rolled out format optimizations.
	WriteOptions dwrf.WriterOptions

	wh *Warehouse

	mu         sync.Mutex
	partitions map[string]*Partition
	unbounded  bool
	closed     bool  // producer ended the stream (unbounded tables only)
	generation int64 // bumped on every partition publish and stream close
}

// Partition is one date-keyed slice of a table, stored as a single DWRF
// file.
type Partition struct {
	Key  string
	Path string
	Rows int
	// Bytes is the compressed data size (streams only).
	Bytes int64
	// MinEventTime/MaxEventTime bound the event times (Unix nanoseconds)
	// of the rows inside, recorded by the ETL writer for freshness
	// accounting. Zero when the writer had no event-time information.
	MinEventTime int64
	MaxEventTime int64
}

// CreateTable registers a new table.
func (w *Warehouse) CreateTable(name string, ts *schema.TableSchema, opts dwrf.WriterOptions) (*Table, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.tables[name]; ok {
		return nil, fmt.Errorf("warehouse: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: ts, WriteOptions: opts, wh: w, partitions: make(map[string]*Partition)}
	w.tables[name] = t
	return t, nil
}

// CreateUnboundedTable registers an append-only streaming table: a
// producer (the ETL pipeline) keeps sealing new partitions into it until
// it calls CloseStream. Consumers that saw StreamOpen() == true may poll
// Generation for newly visible partitions instead of treating the
// current set as final.
func (w *Warehouse) CreateUnboundedTable(name string, ts *schema.TableSchema, opts dwrf.WriterOptions) (*Table, error) {
	t, err := w.CreateTable(name, ts, opts)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.unbounded = true
	t.mu.Unlock()
	return t, nil
}

// Table looks up a table by name.
func (w *Warehouse) Table(name string) (*Table, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: table %s", ErrNotFound, name)
	}
	return t, nil
}

// Tables lists table names, sorted.
func (w *Warehouse) Tables() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.tables))
	for n := range w.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// partitionPath names the backing file of a partition.
func partitionPath(table, key string) string {
	return fmt.Sprintf("warehouse/%s/%s.dwrf", table, key)
}

// PartitionWriter appends rows to a new partition.
type PartitionWriter struct {
	table    *Table
	key      string
	w        *dwrf.Writer
	rows     int
	minEvent int64
	maxEvent int64
}

// NewPartition opens a writer for a new partition with the given key
// (e.g. "2026-06-01"). The partition becomes visible on Close. An
// orphaned backing file from a writer that crashed before Close (the
// partition never became visible) is deleted and rewritten — this is the
// retry path of the streaming ETL pipeline's seal protocol.
func (t *Table) NewPartition(key string) (*PartitionWriter, error) {
	t.mu.Lock()
	_, exists := t.partitions[key]
	closed := t.unbounded && t.closed
	t.mu.Unlock()
	if exists {
		return nil, fmt.Errorf("warehouse: partition %s/%s already exists", t.Name, key)
	}
	if closed {
		return nil, fmt.Errorf("warehouse: table %s stream is closed", t.Name)
	}
	path := partitionPath(t.Name, key)
	if t.wh.cluster.Exists(path) {
		if err := t.wh.cluster.Delete(path); err != nil {
			return nil, err
		}
	}
	w, err := dwrf.NewWriter(t.wh.cluster, path, t.Schema, t.WriteOptions)
	if err != nil {
		return nil, err
	}
	return &PartitionWriter{table: t, key: key, w: w}, nil
}

// WriteRow appends one sample.
func (pw *PartitionWriter) WriteRow(s *schema.Sample) error {
	if err := pw.w.WriteRow(s); err != nil {
		return err
	}
	pw.rows++
	return nil
}

// NoteEventTime widens the partition's event-time bounds by one row's
// event time (Unix nanoseconds). Zero timestamps are ignored.
func (pw *PartitionWriter) NoteEventTime(ns int64) {
	if ns == 0 {
		return
	}
	if pw.minEvent == 0 || ns < pw.minEvent {
		pw.minEvent = ns
	}
	if ns > pw.maxEvent {
		pw.maxEvent = ns
	}
}

// Close seals the partition and publishes it in the table. Sealing and
// visibility are one atomic step: readers either see the complete,
// immutable partition or nothing — a publish failure anywhere in the
// sequence leaves the table exactly as it was, with no entry and no
// generation bump, so a retrying producer can Abort the orphan and
// re-produce the partition from its checkpoint.
func (pw *PartitionWriter) Close() error {
	if err := pw.w.Close(); err != nil {
		return err
	}
	path := partitionPath(pw.table.Name, pw.key)
	r, err := dwrf.OpenReader(pw.table.wh.cluster, path)
	if err != nil {
		return err
	}
	p := &Partition{
		Key: pw.key, Path: path, Rows: pw.rows, Bytes: r.DataBytes(),
		MinEventTime: pw.minEvent, MaxEventTime: pw.maxEvent,
	}
	pw.table.mu.Lock()
	pw.table.partitions[pw.key] = p
	pw.table.generation++
	pw.table.mu.Unlock()
	return nil
}

// Abort discards a partition that will never be published: the backing
// file is reclaimed and the table is untouched (the partition was never
// visible). It is the cleanup half of a producer's write-retry loop —
// called after a failed Close so the re-produce starts from a clean
// slate instead of leaking an orphan file per attempt. Idempotent.
func (pw *PartitionWriter) Abort() error {
	path := partitionPath(pw.table.Name, pw.key)
	if !pw.table.wh.cluster.Exists(path) {
		return nil
	}
	return pw.table.wh.cluster.Delete(path)
}

// WriteStats reports the write-side recovery work (append retries, torn
// ack dedups and repairs, backoff paid) behind this partition's rows so
// far.
func (pw *PartitionWriter) WriteStats() dwrf.WriteStats { return pw.w.WriteStats() }

// Unbounded reports whether the table was created as a streaming table.
func (t *Table) Unbounded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unbounded
}

// StreamOpen reports whether more partitions may still appear: true for
// an unbounded table whose producer has not yet called CloseStream,
// always false for static tables.
func (t *Table) StreamOpen() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unbounded && !t.closed
}

// CloseStream marks an unbounded table's stream as ended: no further
// partitions will be published, and sessions tailing the table may
// finish once every visible split is consumed. Idempotent.
func (t *Table) CloseStream() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.unbounded {
		return fmt.Errorf("warehouse: table %s is not unbounded", t.Name)
	}
	if !t.closed {
		t.closed = true
		t.generation++
	}
	return nil
}

// Generation reports a counter bumped on every partition publish and on
// stream close. Pollers compare generations to detect new work without
// re-enumerating splits.
func (t *Table) Generation() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.generation
}

// Partitions returns the table's partitions sorted by key.
func (t *Table) Partitions() []*Partition {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Partition, 0, len(t.partitions))
	for _, p := range t.partitions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Partition looks up one partition.
func (t *Table) Partition(key string) (*Partition, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.partitions[key]
	if !ok {
		return nil, fmt.Errorf("%w: partition %s/%s", ErrNotFound, t.Name, key)
	}
	return p, nil
}

// TotalBytes reports the compressed size of all partitions (Table 3's
// "All Partitions").
func (t *Table) TotalBytes() int64 {
	var total int64
	for _, p := range t.Partitions() {
		total += p.Bytes
	}
	return total
}

// BytesForKeys reports the cumulative size of the named partitions
// (Table 3's "Used Partitions").
func (t *Table) BytesForKeys(keys []string) (int64, error) {
	var total int64
	for _, k := range keys {
		p, err := t.Partition(k)
		if err != nil {
			return 0, err
		}
		total += p.Bytes
	}
	return total, nil
}

// FeatureBytes aggregates stored bytes per feature across the named
// partitions (Figure 7's byte-popularity basis). Pass nil for all
// partitions.
func (t *Table) FeatureBytes(keys []string) (map[schema.FeatureID]int64, error) {
	if keys == nil {
		for _, p := range t.Partitions() {
			keys = append(keys, p.Key)
		}
	}
	out := make(map[schema.FeatureID]int64)
	for _, k := range keys {
		p, err := t.Partition(k)
		if err != nil {
			return nil, err
		}
		r, err := dwrf.OpenReader(t.wh.cluster, p.Path)
		if err != nil {
			return nil, err
		}
		for id, b := range r.FeatureBytes() {
			out[id] += b
		}
	}
	return out, nil
}

// ProjectedBytes reports the bytes a projection selects across the named
// partitions (Table 5's "% bytes used" numerator).
func (t *Table) ProjectedBytes(keys []string, proj *schema.Projection) (int64, error) {
	var total int64
	for _, k := range keys {
		p, err := t.Partition(k)
		if err != nil {
			return 0, err
		}
		r, err := dwrf.OpenReader(t.wh.cluster, p.Path)
		if err != nil {
			return 0, err
		}
		total += r.ProjectedBytes(proj)
	}
	return total, nil
}

// Split is one self-contained unit of read work: a stripe of a partition
// file. The DPP Master hands splits to Workers (§3.2.1).
type Split struct {
	Table     string
	Partition string
	Path      string
	Stripe    int
	Rows      int
	// MinEventTime/MaxEventTime carry the partition's event-time bounds
	// (Unix nanoseconds, zero if unknown) so the master can account
	// event-time→trainer freshness when the split completes.
	MinEventTime int64
	MaxEventTime int64
}

// Splits enumerates the splits covering the named partitions in order.
// Pass nil for all partitions.
func (t *Table) Splits(keys []string) ([]Split, error) {
	if keys == nil {
		for _, p := range t.Partitions() {
			keys = append(keys, p.Key)
		}
	}
	var out []Split
	for _, k := range keys {
		splits, err := t.PartitionSplits(k)
		if err != nil {
			return nil, err
		}
		out = append(out, splits...)
	}
	return out, nil
}

// PartitionSplits enumerates the splits of one visible partition. The
// DPP master uses it to discover work incrementally as a streaming ETL
// seals partitions, without re-enumerating the whole table.
func (t *Table) PartitionSplits(key string) ([]Split, error) {
	p, err := t.Partition(key)
	if err != nil {
		return nil, err
	}
	r, err := dwrf.OpenReader(t.wh.cluster, p.Path)
	if err != nil {
		return nil, err
	}
	out := make([]Split, 0, r.Stripes())
	for i := 0; i < r.Stripes(); i++ {
		out = append(out, Split{
			Table:        t.Name,
			Partition:    key,
			Path:         p.Path,
			Stripe:       i,
			Rows:         r.StripeRows(i),
			MinEventTime: p.MinEventTime,
			MaxEventTime: p.MaxEventTime,
		})
	}
	return out, nil
}

// TableReader is the consumer-side half of the table interface: the view
// a DPP master needs to enumerate and tail a table. Static and unbounded
// tables both satisfy it; only unbounded tables ever report
// StreamOpen() == true or a changing Generation.
type TableReader interface {
	Partitions() []*Partition
	Splits(keys []string) ([]Split, error)
	PartitionSplits(key string) ([]Split, error)
	Generation() int64
	StreamOpen() bool
}

// TableAppender is the producer-side half: the view the ETL pipeline
// writes through. Sealing a partition (PartitionWriter.Close) is the
// only way rows become visible to TableReader users.
type TableAppender interface {
	NewPartition(key string) (*PartitionWriter, error)
	Partition(key string) (*Partition, error)
	CloseStream() error
}

var (
	_ TableReader   = (*Table)(nil)
	_ TableAppender = (*Table)(nil)
)

// ReadSplit reads one split under a projection, returning row samples.
func (w *Warehouse) ReadSplit(sp Split, proj *schema.Projection, opts dwrf.ReadOptions) ([]*schema.Sample, dwrf.ReadStats, error) {
	r, err := dwrf.OpenReader(w.cluster, sp.Path)
	if err != nil {
		return nil, dwrf.ReadStats{}, err
	}
	return r.ReadStripe(sp.Stripe, proj, opts)
}

// ReadSplitBatch reads one split into the columnar batch representation.
// For unflattened files (the paper's regular-map baseline) it decodes the
// whole row payload and converts to columns — the extra copy the flatmap
// optimization removes.
func (w *Warehouse) ReadSplitBatch(sp Split, proj *schema.Projection, opts dwrf.ReadOptions) (*dwrf.Batch, dwrf.ReadStats, error) {
	return w.ReadSplitBatchArena(sp, proj, opts, nil)
}

// ReadSplitBatchArena is ReadSplitBatch decoding into arena-recycled
// columns (nil arena degrades to plain allocation); release the batch
// when done with it.
func (w *Warehouse) ReadSplitBatchArena(sp Split, proj *schema.Projection, opts dwrf.ReadOptions, arena *dwrf.Arena) (*dwrf.Batch, dwrf.ReadStats, error) {
	r, err := dwrf.OpenReader(w.cluster, sp.Path)
	if err != nil {
		return nil, dwrf.ReadStats{}, err
	}
	return readSplitBatch(r, sp, proj, opts, arena)
}

// readSplitBatch decodes one stripe of an already open reader.
func readSplitBatch(r *dwrf.Reader, sp Split, proj *schema.Projection, opts dwrf.ReadOptions, arena *dwrf.Arena) (*dwrf.Batch, dwrf.ReadStats, error) {
	if !r.Flattened() {
		rows, stats, err := r.ReadStripe(sp.Stripe, proj, opts)
		if err != nil {
			return nil, stats, err
		}
		return dwrf.BatchFromSamples(rows), stats, nil
	}
	return r.ReadStripeBatchArena(sp.Stripe, proj, opts, arena)
}

// CachedReader returns a shared reader for path, opening (and footer-
// decoding) it at most once per warehouse while resident. Readers are
// immutable after open, so the cached instance is safe for concurrent
// use; partitions are immutable once published, so the cache never goes
// stale. Residency is LRU-bounded (SetReaderCacheLimit): the map no
// longer grows with every partition a long-lived service ever touched.
func (w *Warehouse) CachedReader(path string) (*dwrf.Reader, error) {
	w.readerMu.Lock()
	if el, ok := w.readers[path]; ok {
		w.readerLRU.MoveToFront(el)
		r := el.Value.(*readerEntry).r
		w.readerMu.Unlock()
		return r, nil
	}
	w.readerMu.Unlock()
	r, err := dwrf.OpenReader(w.cluster, path)
	if err != nil {
		return nil, err
	}
	w.readerMu.Lock()
	if el, ok := w.readers[path]; ok {
		r = el.Value.(*readerEntry).r // lost an open race; keep the first instance
		w.readerLRU.MoveToFront(el)
	} else {
		w.readers[path] = w.readerLRU.PushFront(&readerEntry{path: path, r: r})
		w.evictReadersLocked()
	}
	w.readerMu.Unlock()
	return r, nil
}

// CachedReaders reports how many readers are currently resident.
func (w *Warehouse) CachedReaders() int {
	w.readerMu.Lock()
	defer w.readerMu.Unlock()
	return w.readerLRU.Len()
}

// ReadSplitBatchCached is ReadSplitBatch through the shared reader cache:
// the file footer is fetched and decoded once per file rather than once
// per split. The DPP worker's pipelined fetch stage uses this path.
func (w *Warehouse) ReadSplitBatchCached(sp Split, proj *schema.Projection, opts dwrf.ReadOptions) (*dwrf.Batch, dwrf.ReadStats, error) {
	return w.ReadSplitBatchCachedArena(sp, proj, opts, nil)
}

// ReadSplitBatchCachedArena is ReadSplitBatchCached decoding into
// arena-recycled columns; the DPP worker threads its per-worker arena
// through here so stripe decode reuses the previous stripe's buffers.
func (w *Warehouse) ReadSplitBatchCachedArena(sp Split, proj *schema.Projection, opts dwrf.ReadOptions, arena *dwrf.Arena) (*dwrf.Batch, dwrf.ReadStats, error) {
	r, err := w.CachedReader(sp.Path)
	if err != nil {
		return nil, dwrf.ReadStats{}, err
	}
	return readSplitBatch(r, sp, proj, opts, arena)
}

// ScanPartition re-reads one partition end to end through the stripe-
// prefetching reader (dwrf.Reader.StreamBatches): upcoming stripes are
// fetched and decoded ahead of the consumer by a bounded goroutine
// pool. ETL output validation and storage-tuning sweeps use it instead
// of hand-rolling a stripe loop. It returns the rows scanned and the
// aggregate read statistics, whose FetchWall/DecodeWall split shows
// where the scan's wall time went. Requires the flattened layout.
func (t *Table) ScanPartition(key string, proj *schema.Projection, opts dwrf.ReadOptions, pf dwrf.PrefetchOptions) (int, dwrf.ReadStats, error) {
	p, err := t.Partition(key)
	if err != nil {
		return 0, dwrf.ReadStats{}, err
	}
	r, err := t.wh.CachedReader(p.Path)
	if err != nil {
		return 0, dwrf.ReadStats{}, err
	}
	if pf.Arena == nil {
		// The scan consumes batches internally, so it can always recycle
		// their columns stripe over stripe.
		pf.Arena = dwrf.NewArena()
	}
	stream, err := r.StreamBatches(nil, proj, opts, pf)
	if err != nil {
		return 0, dwrf.ReadStats{}, err
	}
	defer stream.Close()
	rows := 0
	var agg dwrf.ReadStats
	for {
		b, stats, ok, err := stream.Next()
		if err != nil {
			return rows, agg, err
		}
		if !ok {
			return rows, agg, nil
		}
		rows += b.Rows
		b.Release()
		agg.Merge(stats)
	}
}
