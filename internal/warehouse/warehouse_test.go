package warehouse

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
	"dsi/internal/tectonic"
)

func testSchema(t *testing.T) *schema.TableSchema {
	t.Helper()
	ts := schema.NewTableSchema("rm")
	for i := 1; i <= 4; i++ {
		if err := ts.AddColumn(schema.Column{ID: schema.FeatureID(i), Kind: schema.Dense, Name: fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i <= 8; i++ {
		if err := ts.AddColumn(schema.Column{ID: schema.FeatureID(i), Kind: schema.Sparse, Name: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	return ts
}

func newWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	c, err := tectonic.NewCluster(tectonic.Options{Nodes: 4, Replication: 2, ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return New(c)
}

func fillPartition(t *testing.T, tbl *Table, key string, rows int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pw, err := tbl.NewPartition(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		s := schema.NewSample()
		s.Label = float32(rng.Intn(2))
		for id := schema.FeatureID(1); id <= 4; id++ {
			s.DenseFeatures[id] = rng.Float32()
		}
		for id := schema.FeatureID(5); id <= 8; id++ {
			vals := make([]int64, 1+rng.Intn(5))
			for j := range vals {
				vals[j] = rng.Int63n(1000)
			}
			s.SparseFeatures[id] = vals
		}
		if err := pw.WriteRow(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	w := newWarehouse(t)
	ts := testSchema(t)
	if _, err := w.CreateTable("rm1", ts, dwrf.WriterOptions{Flatten: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateTable("rm1", ts, dwrf.WriterOptions{}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	tbl, err := w.Table("rm1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "rm1" {
		t.Fatalf("table name = %s", tbl.Name)
	}
	if _, err := w.Table("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing table error = %v", err)
	}
	if got := w.Tables(); len(got) != 1 || got[0] != "rm1" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestPartitionLifecycle(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "2026-06-01", 40, 1)
	fillPartition(t, tbl, "2026-06-02", 40, 2)

	parts := tbl.Partitions()
	if len(parts) != 2 || parts[0].Key != "2026-06-01" {
		t.Fatalf("Partitions = %+v", parts)
	}
	if parts[0].Rows != 40 || parts[0].Bytes <= 0 {
		t.Fatalf("partition stats = %+v", parts[0])
	}
	if _, err := tbl.NewPartition("2026-06-01"); err == nil {
		t.Fatal("duplicate partition accepted")
	}
	if _, err := tbl.Partition("2026-09-09"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing partition error = %v", err)
	}
}

func TestTotalAndUsedBytes(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 3; d++ {
		fillPartition(t, tbl, fmt.Sprintf("2026-06-0%d", d), 30, int64(d))
	}
	total := tbl.TotalBytes()
	used, err := tbl.BytesForKeys([]string{"2026-06-01", "2026-06-02"})
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || used <= 0 || used >= total {
		t.Fatalf("total=%d used=%d", total, used)
	}
	if _, err := tbl.BytesForKeys([]string{"bad"}); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestSplitsEnumerateStripes(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "p1", 40, 1) // 3 stripes: 16+16+8
	fillPartition(t, tbl, "p2", 16, 2) // 1 stripe

	splits, err := tbl.Splits(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("Splits = %d, want 4", len(splits))
	}
	var rows int
	for _, sp := range splits {
		rows += sp.Rows
	}
	if rows != 56 {
		t.Fatalf("split rows = %d, want 56", rows)
	}
	one, err := tbl.Splits([]string{"p2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Partition != "p2" {
		t.Fatalf("Splits(p2) = %+v", one)
	}
}

func TestReadSplitRoundTrip(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "p1", 32, 7)
	splits, err := tbl.Splits(nil)
	if err != nil {
		t.Fatal(err)
	}
	proj := schema.NewProjection(1, 5)
	var total int
	for _, sp := range splits {
		rows, stats, err := w.ReadSplit(sp, proj, dwrf.ReadOptions{CoalesceBytes: dwrf.DefaultCoalesceBytes})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BytesRead <= 0 {
			t.Fatal("no bytes accounted")
		}
		for _, r := range rows {
			if len(r.DenseFeatures) != 1 || len(r.SparseFeatures) != 1 {
				t.Fatalf("projection leak: %+v", r)
			}
		}
		total += len(rows)
	}
	if total != 32 {
		t.Fatalf("read %d rows, want 32", total)
	}
	// Batch path over the same split.
	b, _, err := w.ReadSplitBatch(splits[0], proj, dwrf.ReadOptions{Flatmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 16 || len(b.Dense) != 1 || len(b.Sparse) != 1 {
		t.Fatalf("batch = rows %d dense %d sparse %d", b.Rows, len(b.Dense), len(b.Sparse))
	}
}

func TestFeatureBytesAndProjectedBytes(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "p1", 64, 3)

	fb, err := tbl.FeatureBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 features + label pseudo-feature 0.
	if len(fb) != 9 {
		t.Fatalf("FeatureBytes has %d entries, want 9", len(fb))
	}
	// Sparse features must be bigger than dense ones on average.
	var denseB, sparseB int64
	for id := schema.FeatureID(1); id <= 4; id++ {
		denseB += fb[id]
	}
	for id := schema.FeatureID(5); id <= 8; id++ {
		sparseB += fb[id]
	}
	if sparseB <= denseB {
		t.Fatalf("sparse bytes %d should exceed dense bytes %d", sparseB, denseB)
	}

	proj := schema.NewProjection(1, 2)
	pb, err := tbl.ProjectedBytes([]string{"p1"}, proj)
	if err != nil {
		t.Fatal(err)
	}
	total := tbl.TotalBytes()
	if pb <= 0 || pb >= total/2 {
		t.Fatalf("projected bytes %d should be a small share of %d", pb, total)
	}
}

func TestWriteOptionsAffectNewPartitionsOnly(t *testing.T) {
	w := newWarehouse(t)
	tbl, err := w.CreateTable("rm1", testSchema(t), dwrf.WriterOptions{Flatten: false})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "old", 16, 1)
	tbl.WriteOptions = dwrf.WriterOptions{Flatten: true}
	fillPartition(t, tbl, "new", 16, 2)

	oldSplits, err := tbl.Splits([]string{"old"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := dwrf.OpenReader(w.Cluster(), oldSplits[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flattened() {
		t.Fatal("old partition should be unflattened")
	}
	newSplits, err := tbl.Splits([]string{"new"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dwrf.OpenReader(w.Cluster(), newSplits[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Flattened() {
		t.Fatal("new partition should be flattened")
	}
}

func TestScanPartitionStreamsAllRows(t *testing.T) {
	wh := newWarehouse(t)
	tbl, err := wh.CreateTable("rm", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "p1", 96, 5)

	rows, stats, err := tbl.ScanPartition("p1", schema.NewProjection(1, 5), dwrf.ReadOptions{Flatmap: true}, dwrf.PrefetchOptions{Depth: 3, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 96 {
		t.Fatalf("scanned %d rows, want 96", rows)
	}
	if stats.IOs == 0 || stats.BytesDecoded == 0 {
		t.Fatalf("scan stats empty: %+v", stats)
	}
	if stats.DecodeWall <= 0 {
		t.Fatalf("scan wall-time split not populated: %+v", stats)
	}
	if _, _, err := tbl.ScanPartition("nope", nil, dwrf.ReadOptions{}, dwrf.PrefetchOptions{}); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestCachedReaderSharedAcrossSplits(t *testing.T) {
	wh := newWarehouse(t)
	tbl, err := wh.CreateTable("rm", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillPartition(t, tbl, "p1", 64, 9)
	splits, err := tbl.Splits(nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := wh.CachedReader(splits[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wh.CachedReader(splits[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("CachedReader returned distinct instances for one path")
	}
	rows := 0
	for _, sp := range splits {
		b, _, err := wh.ReadSplitBatchCached(sp, nil, dwrf.ReadOptions{Flatmap: true})
		if err != nil {
			t.Fatal(err)
		}
		rows += b.Rows
	}
	if rows != 64 {
		t.Fatalf("cached split reads returned %d rows, want 64", rows)
	}
}

func TestUnboundedTableLifecycle(t *testing.T) {
	wh := newWarehouse(t)
	tbl, err := wh.CreateUnboundedTable("stream", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Unbounded() || !tbl.StreamOpen() {
		t.Fatal("unbounded table should start with an open stream")
	}
	g0 := tbl.Generation()
	fillPartition(t, tbl, "p1", 32, 1)
	if g := tbl.Generation(); g != g0+1 {
		t.Fatalf("Generation after seal = %d, want %d", g, g0+1)
	}
	fillPartition(t, tbl, "p2", 32, 2)
	splits, err := tbl.PartitionSplits("p2")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("PartitionSplits(p2) = %d splits, want 2", len(splits))
	}
	if err := tbl.CloseStream(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CloseStream(); err != nil { // idempotent
		t.Fatal(err)
	}
	if tbl.StreamOpen() {
		t.Fatal("StreamOpen after CloseStream")
	}
	if g := tbl.Generation(); g != g0+3 {
		t.Fatalf("Generation after close = %d, want %d", g, g0+3)
	}
	if _, err := tbl.NewPartition("p3"); err == nil {
		t.Fatal("NewPartition accepted after CloseStream")
	}
	// Static tables are never stream-open and reject CloseStream.
	st, err := wh.CreateTable("static", testSchema(t), dwrf.WriterOptions{Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.StreamOpen() || st.Unbounded() {
		t.Fatal("static table reports streaming")
	}
	if err := st.CloseStream(); err == nil {
		t.Fatal("CloseStream accepted on static table")
	}
}

func TestPartitionEventTimeBounds(t *testing.T) {
	wh := newWarehouse(t)
	tbl, err := wh.CreateTable("evt", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 8})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := tbl.NewPartition("p1")
	if err != nil {
		t.Fatal(err)
	}
	for i, ns := range []int64{500, 0, 200, 900} { // zero = unknown, ignored
		s := schema.NewSample()
		s.DenseFeatures[1] = float32(i)
		if err := pw.WriteRow(s); err != nil {
			t.Fatal(err)
		}
		pw.NoteEventTime(ns)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Partition("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p.MinEventTime != 200 || p.MaxEventTime != 900 {
		t.Fatalf("event-time bounds = [%d, %d], want [200, 900]", p.MinEventTime, p.MaxEventTime)
	}
	splits, err := tbl.PartitionSplits("p1")
	if err != nil {
		t.Fatal(err)
	}
	if splits[0].MinEventTime != 200 || splits[0].MaxEventTime != 900 {
		t.Fatalf("split event-time bounds = [%d, %d], want [200, 900]", splits[0].MinEventTime, splits[0].MaxEventTime)
	}
}

func TestNewPartitionReclaimsOrphanedFile(t *testing.T) {
	wh := newWarehouse(t)
	tbl, err := wh.CreateTable("orphan", testSchema(t), dwrf.WriterOptions{Flatten: true})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that crashed before Close: bytes on storage, no
	// visible partition.
	pw, err := tbl.NewPartition("p1")
	if err != nil {
		t.Fatal(err)
	}
	s := schema.NewSample()
	s.DenseFeatures[1] = 1
	if err := pw.WriteRow(s); err != nil {
		t.Fatal(err)
	}
	_ = pw // never closed
	// A retry of the same key must succeed and publish cleanly.
	fillPartition(t, tbl, "p1", 8, 3)
	p, err := tbl.Partition("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 8 {
		t.Fatalf("retried partition rows = %d, want 8", p.Rows)
	}
}
