package warehouse

import (
	"math/rand"
	"testing"

	"dsi/internal/dwrf"
	"dsi/internal/schema"
	"dsi/internal/tectonic"
	"dsi/internal/tectonic/faults"
)

func writeRows(t *testing.T, pw *PartitionWriter, rows int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		s := schema.NewSample()
		s.Label = float32(rng.Intn(2))
		for id := schema.FeatureID(1); id <= 4; id++ {
			s.DenseFeatures[id] = rng.Float32()
		}
		if err := pw.WriteRow(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPartitionPublishFailureRollsBackVisibility pins the write-side
// atomicity contract: a publish that fails (here the backing file's seal
// keeps failing) leaves the table exactly as it was — no partition
// entry, no generation bump — and Abort reclaims the orphan so the same
// key can be re-produced once the storm lifts.
func TestPartitionPublishFailureRollsBackVisibility(t *testing.T) {
	cluster, err := tectonic.NewCluster(tectonic.Options{
		Nodes: 4, Replication: 2, ChunkSize: 1 << 20,
		Retry: tectonic.RetryPolicy{MaxAttempts: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	wh := New(cluster)
	tbl, err := wh.CreateTable("rm", testSchema(t), dwrf.WriterOptions{Flatten: true, RowsPerStripe: 16})
	if err != nil {
		t.Fatal(err)
	}

	cluster.SetFaultSchedule(faults.NewSchedule(5).FailSeals(0, 0, 1))
	genBefore := tbl.Generation()
	pw, err := tbl.NewPartition("day1")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, pw, 40, 1)
	if err := pw.Close(); err == nil {
		t.Fatal("publish under p=1 seal failures succeeded")
	}
	if _, err := tbl.Partition("day1"); err == nil {
		t.Fatal("failed publish left the partition visible")
	}
	if tbl.Generation() != genBefore {
		t.Fatalf("failed publish bumped generation %d -> %d", genBefore, tbl.Generation())
	}
	if err := pw.Abort(); err != nil {
		t.Fatal(err)
	}
	if cluster.Exists("warehouse/rm/day1.dwrf") {
		t.Fatal("Abort left the orphan backing file behind")
	}
	if err := pw.Abort(); err != nil {
		t.Fatalf("Abort is not idempotent: %v", err)
	}

	// Storm over: the same key re-produces cleanly.
	cluster.SetFaultSchedule(nil)
	pw2, err := tbl.NewPartition("day1")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, pw2, 40, 1)
	if err := pw2.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Partition("day1")
	if err != nil || p.Rows != 40 {
		t.Fatalf("re-produced partition = %+v, %v", p, err)
	}
	if tbl.Generation() != genBefore+1 {
		t.Fatalf("generation = %d, want exactly one bump", tbl.Generation())
	}
}
